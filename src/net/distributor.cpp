#include "net/distributor.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <utility>

#include "obs/flight_recorder.h"

namespace prord::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::uint64_t kListenKey = 0;

/// Accepted connections per listen-readable event before yielding back to
/// the event loop. Bounds accept-storm starvation of in-flight requests;
/// level-triggered epoll re-arms immediately if more are queued.
constexpr int kAcceptBurst = 64;

/// Prediction-context length per client connection (mirrors the Prord
/// policy's max_history default).
constexpr std::size_t kPredictHistory = 8;

/// Header marking a distributor-generated cache-warming request.
constexpr std::string_view kPrefetchHeader = "X-Prord-Prefetch: 1\r\n";

/// Content type served for /metrics (Prometheus text exposition 0.0.4).
constexpr std::string_view kMetricsContentType =
    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
constexpr std::string_view kJsonContentType =
    "Content-Type: application/json\r\n";

std::string relay_headers(const HttpResponse& resp) {
  // Forward the worker's diagnostic headers; everything else (framing,
  // connection management) is re-written by the distributor.
  std::string extra;
  for (const auto& [k, v] : resp.headers)
    if (k.starts_with("X-")) extra += k + ": " + v + "\r\n";
  return extra;
}

/// Non-negative integer header value; `fallback` when absent/malformed.
std::int64_t header_i64(const HttpResponse& resp, std::string_view name,
                        std::int64_t fallback) {
  const std::string* v = resp.header(name);
  if (v == nullptr) return fallback;
  std::int64_t out = 0;
  const auto [p, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || p != v->data() + v->size() || out < 0)
    return fallback;
  return out;
}

}  // namespace

Distributor::Distributor(LiveRouter& router, const SiteStore& site,
                         std::vector<BackendWorker*> workers,
                         std::uint16_t port)
    : router_(router),
      site_(site),
      workers_(std::move(workers)),
      port_(port),
      next_client_key_(1 + workers_.size()) {}

Distributor::~Distributor() { stop(); }

void Distributor::configure_obs(DistributorObsOptions options) {
  if (started_) return;
  obs_ = std::move(options);
  trace_sampler_ = obs::Tracer(obs_.trace_sample_rate);
  slo_ = obs::SloMonitor(obs_.slo);
  spans_.clear();
  spans_.reserve(std::min<std::size_t>(obs_.max_spans, 4096));
}

void Distributor::configure_shard(DistributorShardOptions options) {
  if (started_) return;
  shard_ = std::move(options);
  if (shard_.num_shards == 0) shard_.num_shards = 1;
}

void Distributor::set_predictor(predict::IPredictor* service,
                                double min_confidence, std::size_t fanout) {
  if (started_ || service == nullptr) return;
  predictor_ = service;
  // One feed link per shard: the prediction service treats each link as an
  // independent SPSC ring, so shards never contend on the feed path.
  predict_link_ = service->register_link(
      shard_.num_shards > 1
          ? "distributor-shard" + std::to_string(shard_.shard_id)
          : "distributor");
  prefetch_min_confidence_ = min_confidence;
  prefetch_fanout_ = std::max<std::size_t>(1, fanout);
}

bool Distributor::start() {
  if (started_) return true;
  if (!loop_.valid()) return false;

  upstreams_.clear();
  upstreams_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Upstream up;
    up.worker = static_cast<std::uint32_t>(i);
    up.fd = connect_loopback(workers_[i]->port());
    if (!up.fd || !set_nonblocking(up.fd.get())) return false;
    if (!loop_.add(up.fd.get(), EPOLLIN, 1 + i)) return false;
    upstreams_.push_back(std::move(up));
  }

  const bool handoff_only =
      shard_.num_shards > 1 && !shard_.listen.valid();
  if (shard_.listen.valid()) {
    // Sharded mode: the front end pre-bound this socket (SO_REUSEPORT
    // group member or the lone handoff listener).
    listen_ = std::move(shard_.listen);
  } else if (!handoff_only) {
    listen_ = listen_loopback(port_);
  }
  if (!handoff_only) {
    if (!listen_ || !set_nonblocking(listen_.get())) return false;
    // EPOLLEXCLUSIVE keeps a shared listen socket from waking every
    // shard per connection; falls back to a plain add on old kernels.
    if (!loop_.add_listener(listen_.get(), kListenKey)) return false;
  }

  router_.start();  // schedules the policy's periodic belief work
  t0_ = std::chrono::steady_clock::now();
  next_slo_eval_us_ = slo_.options().slice_us;
  started_ = true;
  thread_ = std::thread([this] { run(); });
  return true;
}

void Distributor::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  loop_.wake();
  if (thread_.joinable()) thread_.join();
  router_.finish();
  // Waste accounting: everything issued that no client ever hit.
  const std::uint64_t issued = counters_.prefetch_issued.load();
  const std::uint64_t hits = counters_.prefetch_hits.load();
  counters_.prefetch_wasted.store(issued > hits ? issued - hits : 0);
  started_ = false;
}

void Distributor::run() {
  obs::FlightRecorder& flight = obs::FlightRecorder::instance();
  if (flight.enabled())
    flight.name_thread_ring(
        shard_.num_shards > 1
            ? "distributor-shard" + std::to_string(shard_.shard_id)
            : "distributor");
  // Wide event batch: one epoll_wait drains a whole accept storm or
  // response burst. Sharded loops poll faster so an idle shard still
  // gossips near its interval.
  std::array<epoll_event, 256> events;
  const int timeout_ms = shard_.tick ? 10 : 100;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = loop_.wait(events, timeout_ms);
    if (n < 0) break;
    drain_adopted();
    // Keep the belief clock moving even while idle, so periodic policy
    // work (PRORD replication rounds) fires on schedule.
    const std::int64_t tick_us = elapsed_us();
    router_.advance_to(tick_us);
    slo_tick(tick_us);
    if (shard_.tick) shard_.tick(tick_us);
    // SIGUSR2 handlers call request_dump(); the 100 ms epoll timeout
    // bounds how long the request waits for this poll.
    if (flight.consume_dump_request())
      flight_dump(tick_us, "sigusr2", /*force=*/true);
    for (int i = 0; i < n; ++i) {
      const auto& ev = events[static_cast<std::size_t>(i)];
      const std::uint64_t key = ev.data.u64;
      if (key == EpollLoop::kWakeKey) continue;
      if (key == kListenKey) {
        accept_clients();
        continue;
      }
      if (key >= 1 && key <= upstreams_.size()) {
        Upstream& up = upstreams_[key - 1];
        if (!up.fd.valid()) continue;
        if (ev.events & (EPOLLHUP | EPOLLERR)) {
          fail_upstream(up);
          continue;
        }
        if (ev.events & EPOLLIN) handle_upstream_readable(up);
        if (up.fd.valid() && (ev.events & EPOLLOUT) && !flush_upstream(up))
          fail_upstream(up);
        continue;
      }
      auto it = clients_.find(key);
      if (it == clients_.end()) continue;
      ClientConn& conn = it->second;
      bool dead = (ev.events & (EPOLLHUP | EPOLLERR)) != 0;
      if (!dead && (ev.events & EPOLLIN)) handle_client_readable(conn);
      if (!dead && (ev.events & (EPOLLIN | EPOLLOUT)))
        dead = !flush_client(conn);
      if (!dead && conn.parser.failed() && conn.out.empty()) dead = true;
      // A closing connection lingers until every routed request answered
      // and flushed (otherwise closed-loop clients would hang).
      if (!dead && conn.closing && conn.done.empty() &&
          conn.next_flush == conn.next_seq && conn.out.empty())
        dead = true;
      if (dead) drop_client(key);
    }
  }
}

void Distributor::accept_clients() {
  int burst = 0;
  while (burst < kAcceptBurst) {
    const int cfd = ::accept4(listen_.get(), nullptr, nullptr,
                              SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        counters_.accept_eagain.fetch_add(1, std::memory_order_relaxed);
      } else if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: the connection stays in the backlog and the
        // level-triggered loop retries; counting it makes fd-limit
        // pressure visible instead of a silent stall.
        counters_.accept_emfile.fetch_add(1, std::memory_order_relaxed);
      }
      // Anything else (ECONNABORTED etc.) is a per-connection failure;
      // yield and let the next readable event resume the drain.
      break;
    }
    ++burst;
    counters_.accepts.fetch_add(1, std::memory_order_relaxed);
    if (!shard_.handoff_peers.empty()) {
      Distributor* peer =
          shard_.handoff_peers[next_handoff_++ % shard_.handoff_peers.size()];
      if (peer != this) {
        counters_.handoff_out.fetch_add(1, std::memory_order_relaxed);
        peer->adopt_client(cfd);
        continue;
      }
    }
    register_client(Fd(cfd));
  }
  // Hitting the cap means a genuine storm: epoll (level-triggered)
  // re-reports the listener immediately, so nothing is lost — but count
  // it so storms show in metrics.
  if (burst == kAcceptBurst)
    counters_.accept_bursts.fetch_add(1, std::memory_order_relaxed);
}

void Distributor::register_client(Fd fd) {
  set_nodelay(fd.get());
  const std::uint64_t key = next_client_key_++;
  const int raw = fd.get();
  ClientConn conn;
  conn.fd = std::move(fd);
  conn.key = key;
  conn.conn_id = next_conn_id_++;
  auto [it, ok] = clients_.emplace(key, std::move(conn));
  if (ok && !loop_.add(raw, EPOLLIN, key)) clients_.erase(it);
}

void Distributor::adopt_client(int fd) {
  {
    std::lock_guard<std::mutex> lock(adopt_mu_);
    adopt_inbox_.emplace_back(fd);
  }
  counters_.adopted.fetch_add(1, std::memory_order_relaxed);
  loop_.wake();
}

void Distributor::drain_adopted() {
  std::vector<Fd> batch;
  {
    std::lock_guard<std::mutex> lock(adopt_mu_);
    if (adopt_inbox_.empty()) return;
    batch.swap(adopt_inbox_);
  }
  for (Fd& fd : batch) register_client(std::move(fd));
}

void Distributor::handle_client_readable(ClientConn& conn) {
  // Live-span arrival stamp: every request parsed out of this burst became
  // readable no later than now.
  conn.read_enter_us = elapsed_us();
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      if (!conn.parser.consume(
              std::string_view(buf, static_cast<std::size_t>(n)))) {
        counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
        conn.closing = true;
      }
      while (auto req = conn.parser.pop()) handle_request(conn, *req);
      continue;
    }
    if (n == 0) {
      conn.closing = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.closing = true;
    return;
  }
}

void Distributor::handle_request(ClientConn& conn, const HttpRequest& req) {
  const std::uint64_t seq = conn.next_seq++;
  if (!req.keep_alive) conn.closing = true;

  if (req.target == "/metrics") {
    counters_.metrics_scrapes.fetch_add(1, std::memory_order_relaxed);
    const std::string body =
        metrics_fn_ ? metrics_fn_()
                    : "prord_live_requests_total " +
                          std::to_string(counters_.requests.load()) + "\n";
    local_reply(conn, seq, 200, "OK", body, kMetricsContentType);
    return;
  }
  if (req.target == "/slo") {
    local_reply(conn, seq, 200, "OK",
                slo_fn_ ? slo_fn_() : slo_.to_json(elapsed_us()) + "\n",
                kJsonContentType);
    return;
  }

  const std::uint64_t req_index =
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const sim::SimTime now_us = elapsed_us();
  router_.advance_to(now_us);

  const trace::FileId file = site_.lookup(req.target);
  if (file == trace::kInvalidFile) {
    counters_.not_found.fetch_add(1, std::memory_order_relaxed);
    local_reply(conn, seq, 404, "Not Found", "unknown url\n");
    return;
  }

  trace::Request r;
  r.at = now_us;
  r.client = conn.conn_id;
  r.conn = conn.conn_id;
  r.file = file;
  r.bytes = site_.size_bytes(file);
  r.is_embedded = SiteStore::is_embedded(req.target);
  r.is_dynamic = SiteStore::is_dynamic(req.target);
  r.starts_connection = (seq == 0);

  const core::RoutedRequest routed = router_.route(r);
  if (!routed.valid) {
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    slo_record(now_us, 0, /*success=*/false);
    local_reply(conn, seq, 503, "Service Unavailable", "no backend\n");
    return;
  }
  Upstream& up = upstreams_[routed.decision.server];
  if (!up.fd.valid()) {
    // Routed to a worker whose upstream link already died: undo the
    // connection stickiness and answer 502.
    router_.core().unstick(r.conn, routed.decision.server);
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    slo_record(now_us, 0, /*success=*/false);
    local_reply(conn, seq, 502, "Bad Gateway", "backend down\n");
    return;
  }
  obs::flight_record(obs::FlightEventType::kRouteDecision,
                     routed.decision.server, file, req_index);

  Pending p;
  p.client_key = conn.key;
  p.seq = seq;
  p.request = r;
  p.t_in_us = now_us;
  std::string extra_headers;
  if (trace_sampler_.enabled() && trace_sampler_.sampled(req_index)) {
    auto span = std::make_unique<obs::LiveSpan>();
    span->id = obs::derive_trace_id(obs_.trace_seed, req_index);
    span->request = req_index;
    span->shard = shard_.shard_id;
    span->conn = conn.conn_id;
    span->file = file;
    span->bytes = r.bytes;
    span->server = routed.decision.server;
    span->via = routed.decision.via;
    span->arrival = conn.read_enter_us;
    // Hop 0 originates here; the worker echoes its own timing back in
    // X-Prord-Serve-Us / X-Prord-Cache-Us response headers.
    extra_headers.append("X-Prord-Trace: ")
        .append(obs::format_trace_header({span->id, 0}))
        .append("\r\n");
    const std::int64_t t_routed = elapsed_us();
    p.t_routed_us = t_routed;
    span->hop_us[static_cast<unsigned>(obs::LiveHop::kParse)] =
        std::max<std::int64_t>(0, now_us - span->arrival);
    span->hop_us[static_cast<unsigned>(obs::LiveHop::kRoute)] =
        t_routed - now_us;
    p.trace = std::move(span);
  } else {
    p.t_routed_us = now_us;
  }

  up.pending.push_back(std::move(p));
  up.out.push(format_request(req.target,
                             "backend" + std::to_string(up.worker),
                             extra_headers));
  router_.on_forwarded(r, routed.decision.server);
  const bool ok = flush_upstream(up);
  // Stamp the kernel-handoff time on the request just queued (it is the
  // deque's back unless fail_upstream already swept the deque).
  if (!up.pending.empty() && up.pending.back().seq == seq &&
      up.pending.back().client_key == conn.key)
    up.pending.back().t_sent_us = elapsed_us();
  if (!ok) {
    fail_upstream(up);
    return;
  }
  // Prediction feed + proactive prefetch ride *after* the client request
  // is on the wire: the demand path never waits on the predictor.
  predict_and_prefetch(conn, r, routed.decision.server, req_index, now_us);
}

void Distributor::predict_and_prefetch(ClientConn& conn,
                                       const trace::Request& r,
                                       std::uint32_t server,
                                       std::uint64_t req_index,
                                       std::int64_t now_us) {
  if (!predict_link_ || r.is_dynamic) return;
  predict::Observation obs;
  obs.conn = conn.conn_id;
  obs.file = r.file;
  obs.main_page = !r.is_embedded;
  obs.t_us = now_us;
  if (!predict_link_->feed(obs)) {
    counters_.predict_drops.fetch_add(1, std::memory_order_relaxed);
    obs::flight_record(obs::FlightEventType::kPredictDrop, conn.conn_id,
                       r.file);
  }
  if (r.is_embedded) return;

  conn.history.push_back(r.file);
  if (conn.history.size() > kPredictHistory)
    conn.history.erase(conn.history.begin());

  const auto assocs =
      predict_link_->associations(conn.history, prefetch_fanout_);
  for (const predict::Association& a : assocs) {
    if (a.confidence < prefetch_min_confidence_) continue;
    issue_prefetch(server, a.file, req_index, now_us);
  }
}

void Distributor::issue_prefetch(std::uint32_t server, trace::FileId file,
                                 std::uint64_t req_index,
                                 std::int64_t now_us) {
  if (file == trace::kInvalidFile || file >= site_.count()) return;
  if (prefetch_inflight_.contains(file) || prefetch_ready_.contains(file))
    return;  // already warming / warmed and unconsumed
  Upstream& up = upstreams_[server];
  if (!up.fd.valid()) return;
  const std::string& url = site_.url(file);
  if (SiteStore::is_dynamic(url)) return;  // generated per request
  // The belief model already knows what the worker holds: prefetching a
  // resident file would only burn a loopback round trip.
  if (router_.cluster().backend(server).caches(file)) return;

  Pending p;
  p.prefetch = true;
  p.request.file = file;
  p.request.conn = 0;
  p.t_in_us = now_us;
  p.t_routed_us = now_us;
  up.pending.push_back(std::move(p));
  up.out.push(format_request(url, "backend" + std::to_string(up.worker),
                             kPrefetchHeader));
  counters_.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
  prefetch_inflight_.emplace(file, server);
  obs::flight_record(obs::FlightEventType::kPrefetchIssue, server, file,
                     req_index);
  if (!flush_upstream(up)) fail_upstream(up);
}

void Distributor::local_reply(ClientConn& conn, std::uint64_t seq, int status,
                              std::string_view reason, std::string_view body,
                              std::string_view extra_headers) {
  DoneEntry entry;
  entry.bytes = format_response(status, reason, body, extra_headers);
  entry.t_done_us = elapsed_us();
  finish_response(conn, seq, std::move(entry));
}

void Distributor::finish_response(ClientConn& conn, std::uint64_t seq,
                                  DoneEntry entry) {
  conn.done.emplace(seq, std::move(entry));
  pump_client(conn);
}

void Distributor::pump_client(ClientConn& conn) {
  while (!conn.done.empty() &&
         conn.done.begin()->first == conn.next_flush) {
    DoneEntry& entry = conn.done.begin()->second;
    conn.out.push(std::move(entry.bytes));
    if (entry.trace) {
      // Last hop: how long the response sat behind earlier sequence
      // numbers. completion - arrival now equals the hop sum exactly.
      const std::int64_t t_out = elapsed_us();
      entry.trace->hop_us[static_cast<unsigned>(obs::LiveHop::kReorderHold)] =
          std::max<std::int64_t>(0, t_out - entry.t_done_us);
      entry.trace->completion =
          entry.trace->arrival + entry.trace->hop_sum();
      complete_span(std::move(entry.trace));
    }
    conn.done.erase(conn.done.begin());
    ++conn.next_flush;
  }
  flush_client(conn);
}

bool Distributor::flush_client(ClientConn& conn) {
  // One vectored sendmsg flushes every queued response (up to the iovec
  // cap) — a pipelined burst costs one syscall, not one per response.
  if (!conn.out.flush(conn.fd.get()))
    return false;  // peer is gone; EPOLLHUP will reap the connection
  if (!conn.out.empty()) {
    if (!conn.want_write) {
      conn.want_write = true;
      loop_.mod(conn.fd.get(), EPOLLIN | EPOLLOUT, conn.key);
    }
  } else if (conn.want_write) {
    conn.want_write = false;
    loop_.mod(conn.fd.get(), EPOLLIN, conn.key);
  }
  return true;
}

void Distributor::drop_client(std::uint64_t key) {
  auto it = clients_.find(key);
  if (it == clients_.end()) return;
  router_.forget_connection(it->second.conn_id);
  loop_.del(it->second.fd.get());
  clients_.erase(it);
}

void Distributor::handle_upstream_readable(Upstream& up) {
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(up.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      if (!up.parser.consume(
              std::string_view(buf, static_cast<std::size_t>(n)))) {
        fail_upstream(up);
        return;
      }
      while (auto resp = up.parser.pop()) {
        if (up.pending.empty()) {
          fail_upstream(up);  // response with no matching request
          return;
        }
        Pending p = std::move(up.pending.front());
        up.pending.pop_front();
        const std::int64_t t_resp = elapsed_us();
        if (p.prefetch) {
          // Cache-warming ack: the file is resident upstream now. Nothing
          // client-facing moves — not the router belief, not the response
          // counter, not the SLO windows.
          counters_.prefetch_responses.fetch_add(1,
                                                 std::memory_order_relaxed);
          if (prefetch_inflight_.erase(p.request.file) > 0 &&
              resp->status == 200)
            prefetch_ready_.insert(p.request.file);
          continue;
        }
        router_.advance_to(t_resp);
        router_.on_response(p.request, up.worker);
        counters_.responses.fetch_add(1, std::memory_order_relaxed);
        slo_record(t_resp, t_resp - p.t_in_us, resp->status < 500);
        // Prefetch-hit attribution: a client request answered from cache
        // on a file this distributor warmed counts once, then re-arms.
        if (!prefetch_ready_.empty()) {
          const std::string* cache = resp->header("X-Cache");
          if (cache != nullptr && *cache == "HIT" &&
              prefetch_ready_.erase(p.request.file) > 0)
            counters_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
        }
        auto cit = clients_.find(p.client_key);
        if (cit == clients_.end()) continue;  // client left mid-flight
        DoneEntry entry;
        entry.bytes = format_response(resp->status, resp->reason, resp->body,
                                      relay_headers(*resp));
        entry.t_done_us = elapsed_us();
        if (p.trace) {
          // Split distributor-measured wire+queue time from the worker's
          // self-reported handling time. The three segments are clamped
          // to partition [t_sent, t_resp] so the hops keep telescoping
          // even if the worker's clock reads slightly long.
          obs::LiveSpan& span = *p.trace;
          const std::int64_t t_sent =
              p.t_sent_us > 0 ? p.t_sent_us : p.t_routed_us;
          span.hop_us[static_cast<unsigned>(obs::LiveHop::kUpstreamSend)] =
              std::max<std::int64_t>(0, t_sent - p.t_routed_us);
          const std::int64_t round_trip =
              std::max<std::int64_t>(0, t_resp - t_sent);
          const std::int64_t serve_us = std::min(
              header_i64(*resp, obs::kServeUsHeader, 0), round_trip);
          const std::int64_t cache_us =
              std::min(header_i64(*resp, obs::kCacheUsHeader, 0), serve_us);
          span.hop_us[static_cast<unsigned>(obs::LiveHop::kUpstreamWait)] =
              round_trip - serve_us;
          span.hop_us[static_cast<unsigned>(obs::LiveHop::kBackendCache)] =
              cache_us;
          span.hop_us[static_cast<unsigned>(obs::LiveHop::kBackendServe)] =
              serve_us - cache_us;
          span.hop_us[static_cast<unsigned>(obs::LiveHop::kRelay)] =
              std::max<std::int64_t>(0, entry.t_done_us - t_resp);
          span.status = resp->status;
          const std::string* cache = resp->header("X-Cache");
          span.cache_resident = cache != nullptr && *cache == "HIT";
          entry.trace = std::move(p.trace);
        }
        finish_response(cit->second, p.seq, std::move(entry));
      }
      continue;
    }
    if (n == 0) {
      fail_upstream(up);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    fail_upstream(up);
    return;
  }
}

bool Distributor::flush_upstream(Upstream& up) {
  if (!up.out.flush(up.fd.get())) return false;
  if (!up.out.empty()) {
    if (!up.want_write) {
      up.want_write = true;
      loop_.mod(up.fd.get(), EPOLLIN | EPOLLOUT, 1 + up.worker);
    }
  } else if (up.want_write) {
    up.want_write = false;
    loop_.mod(up.fd.get(), EPOLLIN, 1 + up.worker);
  }
  return true;
}

void Distributor::fail_upstream(Upstream& up) {
  if (!up.fd.valid()) return;
  // The worker link died: every in-flight request on it fails with 502,
  // the belief model marks the back-end down (policies route elsewhere),
  // and affected client connections are unstuck.
  const std::int64_t now_us = elapsed_us();
  router_.advance_to(now_us);
  router_.cluster().backend(up.worker).set_marked_down(true);
  obs::flight_record(obs::FlightEventType::kUpstreamFail, up.worker,
                     static_cast<std::uint32_t>(up.pending.size()));
  auto pending = std::move(up.pending);
  up.pending.clear();
  for (Pending& p : pending) {
    if (p.prefetch) {
      // Lost cache-warming request: forget it so another worker may be
      // asked later. No client failure, no SLO sample — there is no
      // client.
      prefetch_inflight_.erase(p.request.file);
      continue;
    }
    router_.on_failure(p.request, up.worker);
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    slo_record(now_us, now_us - p.t_in_us, /*success=*/false);
    auto cit = clients_.find(p.client_key);
    if (cit == clients_.end()) continue;
    local_reply(cit->second, p.seq, 502, "Bad Gateway", "backend lost\n");
  }
  loop_.del(up.fd.get());
  up.fd.reset();
  up.out.clear();
  flight_dump(now_us, "fault", /*force=*/false);
}

void Distributor::slo_record(std::int64_t now_us, std::int64_t latency_us,
                             bool success) {
  slo_.record(now_us, latency_us, success);
  slo_tick(now_us);
}

void Distributor::slo_tick(std::int64_t now_us) {
  if (now_us < next_slo_eval_us_) return;
  next_slo_eval_us_ = now_us + slo_.options().slice_us;
  const obs::SloEval eval = slo_.evaluate(now_us);
  if (!eval.violating) return;
  counters_.slo_violations.fetch_add(1, std::memory_order_relaxed);
  obs::flight_record(
      obs::FlightEventType::kSloViolation,
      static_cast<std::uint32_t>(std::min(
          eval.short_window.burn_rate * 1000.0, 4.0e9)),
      static_cast<std::uint32_t>(std::min(
          eval.long_window.burn_rate * 1000.0, 4.0e9)));
  flight_dump(now_us, "slo", /*force=*/false);
}

void Distributor::complete_span(std::unique_ptr<obs::LiveSpan> span) {
  if (spans_.size() >= obs_.max_spans) {
    counters_.trace_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(*span);
  counters_.trace_spans.fetch_add(1, std::memory_order_relaxed);
}

void Distributor::flight_dump(std::int64_t now_us, const char* reason,
                              bool force) {
  if (obs_.flight_dump_path.empty()) return;
  obs::FlightRecorder& flight = obs::FlightRecorder::instance();
  if (!flight.enabled()) return;
  if (!force && last_flight_dump_us_ >= 0 &&
      now_us - last_flight_dump_us_ < obs_.flight_dump_cooldown_us)
    return;
  last_flight_dump_us_ = now_us;
  flight.record(obs::FlightEventType::kDump);
  if (flight.dump_to_file(obs_.flight_dump_path, reason))
    counters_.flight_dumps.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace prord::net
