// Distributor: the live cluster's front end (paper Fig. 1/Fig. 6).
//
// Single epoll thread per instance; the sharded front end (src/scale/)
// runs N instances side by side, each a full shard with its own
// LiveRouter belief, bound to one port via SO_REUSEPORT or fed through
// the accept-fd handoff fallback (see DistributorShardOptions).
//
// Clients connect over persistent HTTP/1.1; each
// parsed request is routed through the shared core::RoutingCore (via
// LiveRouter's belief model — the same policy objects and decision-commit
// path the simulator runs) and forwarded to the chosen BackendWorker over
// that worker's one persistent upstream connection. Responses relay back
// on the client connection in request order (per-connection reordering
// buffer, since consecutive requests of one client may hit different
// workers).
//
// The distributor also serves GET /metrics itself (Prometheus text
// snapshot assembled by a caller-provided closure, wired by LiveCluster
// to the obs::MetricRegistry exporter) and GET /slo (the SloMonitor's
// JSON evaluation).
//
// Observability (docs/OBSERVABILITY.md "Live tracing"): when a trace
// sample rate is configured, a deterministic subset of forwarded requests
// — chosen by index hash, so the sampled *set* is identical run to run —
// carries an X-Prord-Trace header to the back-end and is stamped at every
// segment boundary. The stamps telescope: parse + route + upstream_send +
// upstream_wait + backend_cache + backend_serve + relay + reorder_hold
// equals the end-to-end wall latency exactly by construction. Every
// settled request (traced or not) additionally feeds the SLO monitor, and
// route/fault events tap the process-wide flight recorder.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/backend_worker.h"
#include "net/http.h"
#include "net/live_router.h"
#include "net/site_store.h"
#include "net/socket.h"
#include "obs/slo_monitor.h"
#include "obs/trace_context.h"
#include "obs/tracer.h"
#include "predict/predictor_iface.h"

namespace prord::net {

struct DistributorCounters {
  std::atomic<std::uint64_t> requests{0};     ///< client requests parsed
  std::atomic<std::uint64_t> responses{0};    ///< responses relayed back
  std::atomic<std::uint64_t> failures{0};     ///< 502/503 answered locally
  std::atomic<std::uint64_t> not_found{0};    ///< URL outside the site
  std::atomic<std::uint64_t> parse_errors{0};
  std::atomic<std::uint64_t> metrics_scrapes{0};
  std::atomic<std::uint64_t> trace_spans{0};    ///< live spans completed
  std::atomic<std::uint64_t> trace_dropped{0};  ///< spans past the cap
  std::atomic<std::uint64_t> slo_violations{0};
  std::atomic<std::uint64_t> flight_dumps{0};

  // Accept-path accounting (the storm outcomes used to be silent).
  std::atomic<std::uint64_t> accepts{0};        ///< connections accepted here
  std::atomic<std::uint64_t> accept_bursts{0};  ///< drains that hit the cap
  std::atomic<std::uint64_t> accept_eagain{0};  ///< drains ended by EAGAIN
  std::atomic<std::uint64_t> accept_emfile{0};  ///< EMFILE/ENFILE rejections
  std::atomic<std::uint64_t> handoff_out{0};    ///< accepted fds sent to peers
  std::atomic<std::uint64_t> adopted{0};        ///< fds received via handoff

  // Live proactive prefetch (docs/PREDICTOR.md). Prefetch traffic is
  // distributor-generated: it never touches the client counters above,
  // the router belief, or the SLO windows.
  std::atomic<std::uint64_t> prefetch_issued{0};     ///< GETs sent upstream
  std::atomic<std::uint64_t> prefetch_responses{0};  ///< acks from workers
  std::atomic<std::uint64_t> prefetch_hits{0};   ///< client HITs on warmed
  std::atomic<std::uint64_t> prefetch_wasted{0}; ///< issued-hits at stop()
  std::atomic<std::uint64_t> predict_drops{0};   ///< feed-queue-full drops
};

/// Observability wiring, fixed before start().
struct DistributorObsOptions {
  /// Fraction of forwarded requests that carry a trace (0 disables).
  double trace_sample_rate = 0.0;
  /// Seed mixed into the trace-id derivation (ids stay run-stable).
  std::uint64_t trace_seed = 0x9E3779B97F4A7C15ULL;
  /// Completed spans kept in memory; the rest count as trace_dropped.
  std::size_t max_spans = 262144;
  obs::SloOptions slo;
  /// Flight-recorder dump destination; empty disables disk dumps (the
  /// recorder itself is armed by whoever calls FlightRecorder::enable()).
  std::string flight_dump_path;
  /// Minimum spacing between automatic (SLO/fault) dumps. SIGUSR2 dumps
  /// bypass the cooldown.
  std::int64_t flight_dump_cooldown_us = 1'000'000;
};

class Distributor;

/// Shard wiring for the multi-distributor front end (src/scale/). A
/// non-sharded Distributor is exactly a 1-shard one with defaults here.
struct DistributorShardOptions {
  std::uint32_t shard_id = 0;
  std::uint32_t num_shards = 1;
  /// Pre-bound listen socket for this shard (an SO_REUSEPORT group
  /// member, or the lone listener in handoff mode). Invalid => this shard
  /// accepts nothing directly and receives connections via adopt_client().
  Fd listen;
  /// Accept-fd handoff fallback (no SO_REUSEPORT): the accepting shard
  /// round-robins new connections across these peers; an entry equal to
  /// `this` keeps the connection local. Empty => keep everything local.
  std::vector<Distributor*> handoff_peers;
  /// Event-loop hook, called with elapsed_us() once per loop iteration on
  /// the shard thread. The gossip tick (scale::ShardRoutingCore) lives
  /// here so belief merging never needs a cross-shard lock.
  std::function<void(std::int64_t)> tick;
};

class Distributor {
 public:
  /// `router`, `site`, and the workers are borrowed and must outlive the
  /// distributor. `port` 0 picks an ephemeral port (see port()).
  Distributor(LiveRouter& router, const SiteStore& site,
              std::vector<BackendWorker*> workers, std::uint16_t port = 0);
  ~Distributor();
  Distributor(const Distributor&) = delete;
  Distributor& operator=(const Distributor&) = delete;

  /// Must precede start(); ignored afterwards.
  void configure_obs(DistributorObsOptions options);

  /// Places this distributor in a shard group. Must precede start() (and
  /// set_predictor(), which derives the per-shard feed-link name).
  void configure_shard(DistributorShardOptions options);

  /// Thread-safe: transfers ownership of an accepted client fd to this
  /// shard's event loop (round-robin handoff fallback when SO_REUSEPORT
  /// is unavailable). The fd is registered on the next loop iteration.
  void adopt_client(int fd);

  /// Enables live proactive prefetch: the distributor registers a feed
  /// link with `service` (borrowed, must outlive the distributor), feeds
  /// every routed client request, and issues X-Prord-Prefetch GETs for
  /// associations whose confidence clears `min_confidence` (at most
  /// `fanout` per routed main page). Must precede start(). The feed never
  /// blocks the event loop: a full queue drops and counts.
  void set_predictor(predict::IPredictor* service, double min_confidence,
                     std::size_t fanout);

  /// Connects the upstream sockets (the workers must already be
  /// listening), binds the client listen socket, starts the policy and
  /// the event-loop thread. False on any setup failure.
  bool start();
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  std::uint32_t shard_id() const noexcept { return shard_.shard_id; }
  const DistributorCounters& counters() const noexcept { return counters_; }

  /// Completed live spans, oldest first. Distributor-thread state: safe
  /// from the metrics provider (which runs on that thread) and after
  /// stop() has joined.
  const std::vector<obs::LiveSpan>& spans() const noexcept { return spans_; }
  const obs::SloMonitor& slo() const noexcept { return slo_; }
  const DistributorObsOptions& obs_options() const noexcept { return obs_; }
  /// Current /slo body (same thread-safety contract as spans()).
  std::string slo_json() const { return slo_.to_json(elapsed_us()); }

  /// Body served for GET /metrics. Runs on the distributor thread, so it
  /// may safely read the LiveRouter. Unset => minimal built-in snapshot.
  void set_metrics_provider(std::function<std::string()> fn) {
    metrics_fn_ = std::move(fn);
  }

  /// Body served for GET /slo. Runs on the distributor thread. Unset =>
  /// this shard's own SloMonitor JSON; the sharded front end installs an
  /// aggregator that adds per-shard sections.
  void set_slo_provider(std::function<std::string()> fn) {
    slo_fn_ = std::move(fn);
  }

  /// Microseconds since start() — the live clock the belief model runs on.
  sim::SimTime elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  /// A finished response parked in the reorder buffer.
  struct DoneEntry {
    std::string bytes;
    std::int64_t t_done_us = 0;  ///< when the response bytes were built
    std::unique_ptr<obs::LiveSpan> trace;  ///< null unless sampled
  };

  struct ClientConn {
    Fd fd;
    std::uint64_t key = 0;
    std::uint32_t conn_id = 0;  ///< RoutingCore connection id
    RequestParser parser;
    OutQueue out;  ///< responses, flushed with vectored sendmsg
    bool closing = false;
    bool want_write = false;
    /// When the current readable burst started (live-span arrival stamp).
    std::int64_t read_enter_us = 0;
    // In-order response relay: requests get ascending sequence numbers;
    // finished responses wait in `done` until every earlier one flushed.
    std::uint64_t next_seq = 0;
    std::uint64_t next_flush = 0;
    std::map<std::uint64_t, DoneEntry> done;
    /// Recent main pages (prediction context; newest last).
    std::vector<trace::FileId> history;
  };

  /// One forwarded request awaiting its upstream response (FIFO per
  /// upstream connection — workers answer in order).
  struct Pending {
    std::uint64_t client_key = 0;
    std::uint64_t seq = 0;
    trace::Request request;
    std::int64_t t_in_us = 0;      ///< parsed (SLO latency starts here)
    std::int64_t t_routed_us = 0;  ///< routing decision committed
    std::int64_t t_sent_us = 0;    ///< forwarded bytes handed to the kernel
    std::unique_ptr<obs::LiveSpan> trace;  ///< null unless sampled
    /// Distributor-generated cache-warming request: its response is
    /// swallowed here and it is excluded from every client-facing account
    /// (conservation, SLO, router belief, failure replies).
    bool prefetch = false;
  };

  struct Upstream {
    Fd fd;
    std::uint32_t worker = 0;
    ResponseParser parser;
    OutQueue out;  ///< forwarded requests, flushed with vectored sendmsg
    bool want_write = false;
    std::deque<Pending> pending;
  };

  void run();
  void accept_clients();
  /// Registers an accepted/adopted client fd with the event loop.
  void register_client(Fd fd);
  /// Moves handoff-inbox fds onto the event loop (shard thread only).
  void drain_adopted();
  void handle_client_readable(ClientConn& conn);
  void handle_request(ClientConn& conn, const HttpRequest& req);
  void local_reply(ClientConn& conn, std::uint64_t seq, int status,
                   std::string_view reason, std::string_view body,
                   std::string_view extra_headers = {});
  void finish_response(ClientConn& conn, std::uint64_t seq, DoneEntry entry);
  void pump_client(ClientConn& conn);
  bool flush_client(ClientConn& conn);
  void drop_client(std::uint64_t key);

  void handle_upstream_readable(Upstream& up);
  bool flush_upstream(Upstream& up);
  void fail_upstream(Upstream& up);

  /// Feeds the routed request to the predictor link and, for main pages,
  /// issues prefetch GETs for the confident associations. No-op unless
  /// set_predictor() armed the seam.
  void predict_and_prefetch(ClientConn& conn, const trace::Request& r,
                            std::uint32_t server, std::uint64_t req_index,
                            std::int64_t now_us);
  void issue_prefetch(std::uint32_t server, trace::FileId file,
                      std::uint64_t req_index, std::int64_t now_us);

  /// Feeds one settled request into the SLO monitor and keeps the rolling
  /// burn-rate evaluation moving (eval once per slice).
  void slo_record(std::int64_t now_us, std::int64_t latency_us, bool success);
  void slo_tick(std::int64_t now_us);
  void complete_span(std::unique_ptr<obs::LiveSpan> span);
  /// Dumps the flight recorder if a path is configured; automatic reasons
  /// honor the cooldown, `force` (SIGUSR2) does not.
  void flight_dump(std::int64_t now_us, const char* reason, bool force);

  LiveRouter& router_;
  const SiteStore& site_;
  std::vector<BackendWorker*> workers_;

  Fd listen_;
  std::uint16_t port_;
  EpollLoop loop_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point t0_{};

  std::vector<Upstream> upstreams_;  ///< index = worker/back-end id
  std::unordered_map<std::uint64_t, ClientConn> clients_;
  std::uint64_t next_client_key_;
  std::uint32_t next_conn_id_ = 1;

  // Shard wiring (fixed before start()). The inbox is the only
  // cross-thread mutable state: peers push accepted fds, the shard thread
  // drains them on its next iteration.
  DistributorShardOptions shard_;
  std::size_t next_handoff_ = 0;
  std::mutex adopt_mu_;
  std::vector<Fd> adopt_inbox_;

  std::function<std::string()> metrics_fn_;
  std::function<std::string()> slo_fn_;
  DistributorCounters counters_;

  // Live prefetch state (distributor-thread only, except the counters).
  predict::IPredictor* predictor_ = nullptr;     ///< borrowed service
  std::shared_ptr<predict::IPredictorLink> predict_link_;
  double prefetch_min_confidence_ = 0.4;
  std::size_t prefetch_fanout_ = 2;
  /// Issued, awaiting the worker's warm-up ack (dedup key).
  std::unordered_map<trace::FileId, std::uint32_t> prefetch_inflight_;
  /// Warmed, awaiting the first client cache HIT (hit attribution).
  std::unordered_set<trace::FileId> prefetch_ready_;

  // Observability (distributor-thread state unless noted).
  DistributorObsOptions obs_;
  obs::Tracer trace_sampler_{0.0};  ///< used only for sampled(index)
  std::vector<obs::LiveSpan> spans_;
  obs::SloMonitor slo_;
  std::int64_t next_slo_eval_us_ = 0;
  std::int64_t last_flight_dump_us_ = -1;
};

}  // namespace prord::net
