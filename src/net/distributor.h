// Distributor: the live cluster's front end (paper Fig. 1/Fig. 6).
//
// Single epoll thread. Clients connect over persistent HTTP/1.1; each
// parsed request is routed through the shared core::RoutingCore (via
// LiveRouter's belief model — the same policy objects and decision-commit
// path the simulator runs) and forwarded to the chosen BackendWorker over
// that worker's one persistent upstream connection. Responses relay back
// on the client connection in request order (per-connection reordering
// buffer, since consecutive requests of one client may hit different
// workers).
//
// The distributor also serves GET /metrics itself: a Prometheus text
// snapshot assembled by a caller-provided closure (wired by LiveCluster
// to the obs::MetricRegistry exporter).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/backend_worker.h"
#include "net/http.h"
#include "net/live_router.h"
#include "net/site_store.h"
#include "net/socket.h"

namespace prord::net {

struct DistributorCounters {
  std::atomic<std::uint64_t> requests{0};     ///< client requests parsed
  std::atomic<std::uint64_t> responses{0};    ///< responses relayed back
  std::atomic<std::uint64_t> failures{0};     ///< 502/503 answered locally
  std::atomic<std::uint64_t> not_found{0};    ///< URL outside the site
  std::atomic<std::uint64_t> parse_errors{0};
  std::atomic<std::uint64_t> metrics_scrapes{0};
};

class Distributor {
 public:
  /// `router`, `site`, and the workers are borrowed and must outlive the
  /// distributor. `port` 0 picks an ephemeral port (see port()).
  Distributor(LiveRouter& router, const SiteStore& site,
              std::vector<BackendWorker*> workers, std::uint16_t port = 0);
  ~Distributor();
  Distributor(const Distributor&) = delete;
  Distributor& operator=(const Distributor&) = delete;

  /// Connects the upstream sockets (the workers must already be
  /// listening), binds the client listen socket, starts the policy and
  /// the event-loop thread. False on any setup failure.
  bool start();
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  const DistributorCounters& counters() const noexcept { return counters_; }

  /// Body served for GET /metrics. Runs on the distributor thread, so it
  /// may safely read the LiveRouter. Unset => minimal built-in snapshot.
  void set_metrics_provider(std::function<std::string()> fn) {
    metrics_fn_ = std::move(fn);
  }

  /// Microseconds since start() — the live clock the belief model runs on.
  sim::SimTime elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  struct ClientConn {
    Fd fd;
    std::uint64_t key = 0;
    std::uint32_t conn_id = 0;  ///< RoutingCore connection id
    RequestParser parser;
    std::string out;
    std::size_t out_off = 0;
    bool closing = false;
    bool want_write = false;
    // In-order response relay: requests get ascending sequence numbers;
    // finished responses wait in `done` until every earlier one flushed.
    std::uint64_t next_seq = 0;
    std::uint64_t next_flush = 0;
    std::map<std::uint64_t, std::string> done;
  };

  /// One forwarded request awaiting its upstream response (FIFO per
  /// upstream connection — workers answer in order).
  struct Pending {
    std::uint64_t client_key = 0;
    std::uint64_t seq = 0;
    trace::Request request;
  };

  struct Upstream {
    Fd fd;
    std::uint32_t worker = 0;
    ResponseParser parser;
    std::string out;
    std::size_t out_off = 0;
    bool want_write = false;
    std::deque<Pending> pending;
  };

  void run();
  void accept_clients();
  void handle_client_readable(ClientConn& conn);
  void handle_request(ClientConn& conn, const HttpRequest& req);
  void local_reply(ClientConn& conn, std::uint64_t seq, int status,
                   std::string_view reason, std::string_view body);
  void finish_response(ClientConn& conn, std::uint64_t seq,
                       std::string bytes);
  void pump_client(ClientConn& conn);
  bool flush_client(ClientConn& conn);
  void drop_client(std::uint64_t key);

  void handle_upstream_readable(Upstream& up);
  bool flush_upstream(Upstream& up);
  void fail_upstream(Upstream& up);

  LiveRouter& router_;
  const SiteStore& site_;
  std::vector<BackendWorker*> workers_;

  Fd listen_;
  std::uint16_t port_;
  EpollLoop loop_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point t0_{};

  std::vector<Upstream> upstreams_;  ///< index = worker/back-end id
  std::unordered_map<std::uint64_t, ClientConn> clients_;
  std::uint64_t next_client_key_;
  std::uint32_t next_conn_id_ = 1;

  std::function<std::string()> metrics_fn_;
  DistributorCounters counters_;
};

}  // namespace prord::net
