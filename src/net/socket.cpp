#include "net/socket.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prord::net {

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

bool reuseport_supported() {
  static const bool supported = [] {
    Fd probe(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!probe) return false;
    const int one = 1;
    return ::setsockopt(probe.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                        sizeof(one)) == 0;
  }();
  return supported;
}

Fd listen_loopback(std::uint16_t& port, const ListenOptions& options) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options.reuseport &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
          0) {
    return {};
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return {};
  if (::listen(fd.get(), options.backlog) != 0) return {};
  if (port == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
      return {};
    port = ntohs(addr.sin_port);
  }
  return fd;
}

Fd listen_loopback(std::uint16_t& port, int backlog) {
  ListenOptions options;
  options.backlog = backlog;
  return listen_loopback(port, options);
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return {};
  sockaddr_in addr = loopback_addr(port);
  while (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return {};
  }
  set_nodelay(fd.get());
  return fd;
}

EpollLoop::EpollLoop()
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (valid()) add(wake_.get(), EPOLLIN, kWakeKey);
}

bool EpollLoop::add(int fd, std::uint32_t events, std::uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EpollLoop::add_listener(int fd, std::uint64_t key, bool* exclusive) {
#ifdef EPOLLEXCLUSIVE
  if (add(fd, EPOLLIN | EPOLLEXCLUSIVE, key)) {
    if (exclusive) *exclusive = true;
    return true;
  }
#endif
  if (exclusive) *exclusive = false;
  return add(fd, EPOLLIN, key);
}

bool EpollLoop::mod(int fd, std::uint32_t events, std::uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EpollLoop::del(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

int EpollLoop::wait(std::span<epoll_event> out, int timeout_ms) {
  while (true) {
    const int n = ::epoll_wait(epoll_.get(), out.data(),
                               static_cast<int>(out.size()), timeout_ms);
    if (n >= 0) {
      for (int i = 0; i < n; ++i) {
        if (out[static_cast<std::size_t>(i)].data.u64 == kWakeKey) {
          std::uint64_t drain = 0;
          while (::read(wake_.get(), &drain, sizeof(drain)) > 0) {
          }
        }
      }
      return n;
    }
    if (errno != EINTR) return -1;
  }
}

void EpollLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_.get(), &one, sizeof(one));
}

bool OutQueue::flush(int fd) {
  while (!segments_.empty()) {
    iovec iov[kMaxIov];
    std::size_t n = 0;
    std::size_t attempted = 0;
    std::size_t off = head_off_;
    for (const std::string& seg : segments_) {
      if (n == kMaxIov) break;
      iov[n].iov_base = const_cast<char*>(seg.data() + off);
      iov[n].iov_len = seg.size() - off;
      attempted += iov[n].iov_len;
      ++n;
      off = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n;
    ssize_t sent;
    do {
      sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    } while (sent < 0 && errno == EINTR);
    if (sent < 0) return errno == EAGAIN || errno == EWOULDBLOCK;
    size_ -= static_cast<std::size_t>(sent);
    auto remaining = static_cast<std::size_t>(sent);
    while (remaining > 0) {
      const std::size_t head_left = segments_.front().size() - head_off_;
      if (remaining >= head_left) {
        remaining -= head_left;
        segments_.pop_front();
        head_off_ = 0;
      } else {
        head_off_ += remaining;
        remaining = 0;
      }
    }
    // A short sendmsg means the socket buffer is full; stop until EPOLLOUT.
    if (static_cast<std::size_t>(sent) < attempted) break;
  }
  return true;
}

}  // namespace prord::net
