#include "net/socket.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prord::net {

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Fd listen_loopback(std::uint16_t& port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return {};
  if (::listen(fd.get(), backlog) != 0) return {};
  if (port == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
      return {};
    port = ntohs(addr.sin_port);
  }
  return fd;
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return {};
  sockaddr_in addr = loopback_addr(port);
  while (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return {};
  }
  set_nodelay(fd.get());
  return fd;
}

EpollLoop::EpollLoop()
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (valid()) add(wake_.get(), EPOLLIN, kWakeKey);
}

bool EpollLoop::add(int fd, std::uint32_t events, std::uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EpollLoop::mod(int fd, std::uint32_t events, std::uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EpollLoop::del(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

int EpollLoop::wait(std::span<epoll_event> out, int timeout_ms) {
  while (true) {
    const int n = ::epoll_wait(epoll_.get(), out.data(),
                               static_cast<int>(out.size()), timeout_ms);
    if (n >= 0) {
      for (int i = 0; i < n; ++i) {
        if (out[static_cast<std::size_t>(i)].data.u64 == kWakeKey) {
          std::uint64_t drain = 0;
          while (::read(wake_.get(), &drain, sizeof(drain)) > 0) {
          }
        }
      }
      return n;
    }
    if (errno != EINTR) return -1;
  }
}

void EpollLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_.get(), &one, sizeof(one));
}

}  // namespace prord::net
