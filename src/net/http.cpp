#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace prord::net {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [k, v] : headers)
    if (iequals(k, name)) return &v;
  return nullptr;
}

/// Parses "Name: value" lines between `begin` and the blank line; returns
/// false on a malformed line.
bool parse_header_lines(
    std::string_view block,
    std::vector<std::pair<std::string, std::string>>& out) {
  std::size_t pos = 0;
  while (pos < block.size()) {
    const std::size_t eol = block.find("\r\n", pos);
    const std::string_view line =
        block.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                        : eol - pos);
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    out.emplace_back(std::string(trim(line.substr(0, colon))),
                     std::string(trim(line.substr(colon + 1))));
    if (eol == std::string_view::npos) break;
    pos = eol + 2;
  }
  return true;
}

/// HTTP/1.1 defaults to persistent; "Connection: close" opts out.
bool wants_keep_alive(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view version) {
  if (const std::string* c = find_header(headers, "Connection")) {
    if (iequals(*c, "close")) return false;
    if (iequals(*c, "keep-alive")) return true;
  }
  return version == "HTTP/1.1";
}

bool parse_size(std::string_view s, std::size_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool valid_method(std::string_view m) {
  if (m.empty() || m.size() > 16) return false;
  return std::all_of(m.begin(), m.end(),
                     [](char c) { return c >= 'A' && c <= 'Z'; });
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

const std::string* HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

void RequestParser::fail(std::string what) {
  failed_ = true;
  error_ = std::move(what);
}

bool RequestParser::consume(std::string_view data) {
  if (failed_) return false;
  buf_.append(data);
  while (parse_some()) {
  }
  return !failed_;
}

/// One step: discard pending body bytes or cut one complete head off the
/// buffer. Returns true when progress was made and more may follow.
bool RequestParser::parse_some() {
  if (failed_) return false;
  if (body_skip_ > 0) {
    const std::size_t n = std::min(body_skip_, buf_.size());
    buf_.erase(0, n);
    body_skip_ -= n;
    if (body_skip_ > 0) return false;
  }
  const std::size_t head_end = buf_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buf_.size() > kMaxHeaderBytes) fail("header block too large");
    return false;
  }
  const std::string_view head(buf_.data(), head_end);

  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      head.substr(0, std::min(line_end, head.size()));
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    fail("malformed request line");
    return false;
  }
  HttpRequest req;
  req.method = std::string(request_line.substr(0, sp1));
  req.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(trim(request_line.substr(sp2 + 1)));
  if (!valid_method(req.method) || req.target.empty() ||
      !req.version.starts_with("HTTP/")) {
    fail("malformed request line");
    return false;
  }
  if (line_end != std::string_view::npos &&
      !parse_header_lines(head.substr(line_end + 2), req.headers)) {
    fail("malformed header line");
    return false;
  }
  req.keep_alive = wants_keep_alive(req.headers, req.version);

  if (const std::string* cl = req.header("Content-Length")) {
    std::size_t n = 0;
    if (!parse_size(*cl, n) || n > kMaxBodyBytes) {
      fail("bad Content-Length");
      return false;
    }
    body_skip_ = n;  // tolerated but discarded: the cluster serves GETs
  }
  buf_.erase(0, head_end + 4);
  ready_.push_back(std::move(req));
  return true;
}

std::optional<HttpRequest> RequestParser::pop() {
  if (ready_.empty()) return std::nullopt;
  HttpRequest req = std::move(ready_.front());
  ready_.pop_front();
  return req;
}

void ResponseParser::fail(std::string what) {
  failed_ = true;
  error_ = std::move(what);
}

bool ResponseParser::consume(std::string_view data) {
  if (failed_) return false;
  buf_.append(data);
  while (parse_some()) {
  }
  return !failed_;
}

bool ResponseParser::parse_some() {
  if (failed_) return false;
  if (partial_) {
    const std::size_t take = std::min(body_needed_, buf_.size());
    partial_->body.append(buf_, 0, take);
    buf_.erase(0, take);
    body_needed_ -= take;
    if (body_needed_ > 0) return false;
    ready_.push_back(std::move(*partial_));
    partial_.reset();
    return true;
  }
  const std::size_t head_end = buf_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buf_.size() > kMaxHeaderBytes) fail("header block too large");
    return false;
  }
  const std::string_view head(buf_.data(), head_end);

  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      head.substr(0, std::min(line_end, head.size()));
  if (!status_line.starts_with("HTTP/")) {
    fail("malformed status line");
    return false;
  }
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > status_line.size()) {
    fail("malformed status line");
    return false;
  }
  HttpResponse resp;
  const std::string_view code = status_line.substr(sp1 + 1, 3);
  int status = 0;
  const auto [p, ec] =
      std::from_chars(code.data(), code.data() + code.size(), status);
  if (ec != std::errc{} || p != code.data() + code.size() || status < 100 ||
      status > 599) {
    fail("malformed status code");
    return false;
  }
  resp.status = status;
  if (sp1 + 4 < status_line.size())
    resp.reason = std::string(trim(status_line.substr(sp1 + 5)));

  if (line_end != std::string_view::npos &&
      !parse_header_lines(head.substr(line_end + 2), resp.headers)) {
    fail("malformed header line");
    return false;
  }
  resp.keep_alive = wants_keep_alive(
      resp.headers, std::string_view(status_line.substr(0, sp1)));

  std::size_t body = 0;
  if (const std::string* cl = resp.header("Content-Length")) {
    if (!parse_size(*cl, body) || body > kMaxBodyBytes) {
      fail("bad Content-Length");
      return false;
    }
  }
  buf_.erase(0, head_end + 4);
  if (body == 0) {
    ready_.push_back(std::move(resp));
    return true;
  }
  partial_ = std::move(resp);
  partial_->body.reserve(body);
  body_needed_ = body;
  return true;  // body bytes may already be buffered
}

std::optional<HttpResponse> ResponseParser::pop() {
  if (ready_.empty()) return std::nullopt;
  HttpResponse resp = std::move(ready_.front());
  ready_.pop_front();
  return resp;
}

std::string format_request(std::string_view target, std::string_view host,
                           std::string_view extra_headers) {
  std::string out;
  out.reserve(64 + target.size() + extra_headers.size());
  out.append("GET ").append(target).append(" HTTP/1.1\r\nHost: ");
  out.append(host).append("\r\n");
  out.append(extra_headers);
  out.append("\r\n");
  return out;
}

std::string format_response(int status, std::string_view reason,
                            std::string_view body,
                            std::string_view extra_headers) {
  std::string out;
  out.reserve(96 + extra_headers.size() + body.size());
  out.append("HTTP/1.1 ").append(std::to_string(status)).append(" ");
  out.append(reason).append("\r\nContent-Length: ");
  out.append(std::to_string(body.size())).append("\r\n");
  out.append(extra_headers);
  out.append("\r\n");
  out.append(body);
  return out;
}

}  // namespace prord::net
