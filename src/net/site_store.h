// The synthetic site as the live cluster serves it: URL <-> FileId
// mapping over an existing trace::FileTable plus deterministic payload
// materialization (the workers have no filesystem — "disk" content is
// generated on demand and cached in memory).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "trace/workload.h"

namespace prord::net {

class SiteStore {
 public:
  /// Borrows `files` (the workload's table); it must outlive the store
  /// and not grow while the live cluster runs.
  explicit SiteStore(const trace::FileTable& files) : files_(files) {}

  const trace::FileTable& files() const noexcept { return files_; }

  trace::FileId lookup(std::string_view url) const {
    return files_.lookup(url);
  }
  const std::string& url(trace::FileId id) const { return files_.url(id); }
  std::uint32_t size_bytes(trace::FileId id) const {
    return files_.size_bytes(id);
  }
  std::size_t count() const noexcept { return files_.count(); }

  /// Same classification the workload builder applied, re-derived from
  /// the URL so the live distributor labels requests exactly as the sim
  /// path did.
  static bool is_embedded(std::string_view url) {
    return trace::is_embedded_url(url);
  }
  static bool is_dynamic(std::string_view url) {
    return trace::is_dynamic_url(url);
  }

  /// Deterministic body of size_bytes(id): the url followed by filler.
  /// Thread-safe (reads only the const table).
  std::string make_payload(trace::FileId id) const;

 private:
  const trace::FileTable& files_;
};

}  // namespace prord::net
