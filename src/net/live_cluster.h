// LiveCluster: orchestration for the live loopback prototype.
//
// run_live() assembles the full system in one process — N BackendWorker
// threads, one Distributor thread with its LiveRouter belief model, and a
// LoadGenerator on the calling thread — replays a workload, scrapes
// /metrics over a real socket, tears everything down, and returns the
// consolidated result. This is what `prord_live` and the loopback bench
// drive (docs/LIVE_CLUSTER.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "logmining/mining_model.h"
#include "net/load_generator.h"
#include "obs/metric_registry.h"
#include "obs/slo_monitor.h"
#include "obs/trace_context.h"
#include "predict/predictor_iface.h"
#include "trace/models.h"
#include "trace/workload.h"

namespace prord::net {

class BackendWorker;

struct LiveConfig {
  core::PolicyKind policy = core::PolicyKind::kPrord;
  std::uint32_t backends = 4;
  /// Total requests the load generator issues (cycling the trace as
  /// needed). 0 = one pass over the workload.
  std::size_t requests = 100'000;
  std::size_t concurrency = 16;
  std::size_t pipeline_depth = 1;
  bool open_loop = false;
  double time_scale = 1.0;  ///< open-loop arrival compression
  std::uint16_t port = 0;   ///< distributor port; 0 = ephemeral

  // --- Sharded front end (docs/SCALING.md; honored by
  // scale::run_live_sharded — run_live() itself is always 1 shard). ---
  /// Distributor shards sharing the client port.
  std::uint32_t shards = 1;
  /// Load-gossip cadence / staleness horizon between shard beliefs.
  std::int64_t gossip_interval_us = 2000;
  std::int64_t gossip_staleness_us = 100'000;
  /// Allow SO_REUSEPORT (kernel-spread accepts). When off or unsupported,
  /// shard 0 accepts everything and round-robins fds to its peers.
  bool reuseport = true;
  /// Load-generator threads (each drives requests/N of the total). 0 =
  /// one per shard.
  std::size_t load_threads = 1;

  /// Synthetic workload (ignored when `clf_path` is set).
  trace::WorkloadSpec workload = trace::synthetic_spec();
  /// Optional Common Log Format trace to replay instead.
  std::string clf_path;

  /// Cache sizing, as in the sim experiments: cluster-aggregate fraction
  /// of the site footprint, split across back-ends; a share of each
  /// back-end's budget is reserved for proactive placement.
  double memory_fraction = 0.30;
  double pinned_fraction = 0.25;

  /// PRORD-family knobs. Replication runs on the wall clock here, so the
  /// default period is short enough to fire within bench-length runs.
  sim::SimTime replication_interval = sim::sec(1.0);
  double prefetch_threshold = 0.4;
  std::int64_t idle_timeout_us = 10'000'000;

  /// Live proactive prefetch over sockets (docs/PREDICTOR.md): when on, a
  /// PredictionService runs next to the distributor, fed from the routed
  /// request stream, and confident associations are warmed into the
  /// backend LRUs via X-Prord-Prefetch requests. `predictor.algo` selects
  /// the backend (PRORD graph / Mithril); `predictor.confidence` gates
  /// what gets issued.
  bool prefetch = false;
  predict::PredictorParams predictor{};

  // --- Observability (docs/OBSERVABILITY.md "Live tracing"). ---
  /// Fraction of forwarded requests traced hop-by-hop (0 disables).
  double trace_sample_rate = 0.0;
  std::uint64_t trace_seed = 0x9E3779B97F4A7C15ULL;
  /// Completed spans retained in memory (the rest count as dropped).
  std::size_t max_spans = 262144;
  /// JSONL destination for completed spans; empty keeps them only in
  /// LiveRunResult::spans.
  std::string trace_out;
  obs::SloOptions slo;
  /// Arms the process-wide flight recorder for this run.
  bool flight_recorder = false;
  std::size_t flight_ring_capacity = 4096;
  /// Dump destination for SLO/fault/SIGUSR2 dumps; non-empty implies
  /// flight_recorder.
  std::string flight_dump_path;
};

struct LiveWorkerSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t dynamic_served = 0;
  std::uint64_t preloads = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t prefetch_requests = 0;
  std::uint64_t prefetch_resident = 0;
  std::uint64_t prefetch_loads = 0;
};

/// Per-shard accounting for sharded runs (docs/SCALING.md).
struct LiveShardSnapshot {
  std::uint32_t shard = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t failures = 0;
  std::uint64_t not_found = 0;
  std::uint64_t accepts = 0;   ///< connections this shard accepted itself
  std::uint64_t adopted = 0;   ///< connections received via handoff
  std::uint64_t routed = 0;    ///< this shard's RoutingCore commits
  std::uint64_t trace_spans = 0;
  std::uint64_t slo_violations = 0;
  std::uint64_t gossip_publishes = 0;
  std::uint64_t gossip_merges = 0;
  std::uint64_t gossip_peers_skipped = 0;
};

struct LiveRunResult {
  std::string policy;
  std::string workload;
  bool started = false;  ///< false = socket/thread setup failed
  LoadGenResult load;

  // Sharded front end (shard_count == 1 and `shards` empty for plain
  // run_live()).
  std::uint32_t shard_count = 1;
  bool reuseport_used = false;
  std::vector<LiveShardSnapshot> shards;

  // Distributor-side accounting.
  std::uint64_t dist_requests = 0;
  std::uint64_t dist_responses = 0;
  std::uint64_t dist_failures = 0;
  std::uint64_t dist_not_found = 0;
  std::uint64_t dist_parse_errors = 0;

  // RoutingCore commit counters (the shared sim/live code path).
  std::uint64_t routed = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t forwards = 0;

  std::vector<LiveWorkerSnapshot> workers;
  /// GET /metrics body fetched over a real client socket post-run.
  std::string metrics_scrape;
  /// The same snapshot as a registry (exporters, tests).
  obs::MetricRegistry registry;

  // Observability results.
  std::vector<obs::LiveSpan> spans;  ///< completed live spans, oldest first
  std::uint64_t trace_spans = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t slo_violations = 0;
  std::uint64_t flight_dumps = 0;
  /// GET /slo body fetched over a real client socket while live.
  std::string slo_scrape;
  obs::SloEval slo;  ///< final burn-rate evaluation at teardown

  // Live prefetch results (meaningful when LiveConfig::prefetch was on).
  bool prefetch_enabled = false;
  std::string prefetch_algo;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_responses = 0;
  std::uint64_t prefetch_hits = 0;    ///< client HITs on warmed files
  std::uint64_t prefetch_wasted = 0;  ///< warmed but never client-hit
  std::uint64_t predict_drops = 0;    ///< event-loop feeds dropped
  predict::PredictorStats predictor;  ///< service-side statistics

  /// Fraction of issued prefetches no client ever consumed.
  double prefetch_waste_ratio() const noexcept {
    return prefetch_issued
               ? static_cast<double>(prefetch_wasted) /
                     static_cast<double>(prefetch_issued)
               : 0.0;
  }

  bool conserved() const noexcept { return load.conserved(); }

  /// Conservation across shards: every client-issued request was parsed
  /// by exactly one shard, and every parsed request was answered
  /// (response, failure reply, or 404). Trivially true for plain runs.
  bool shard_conserved() const noexcept {
    if (shards.empty()) return true;
    std::uint64_t parsed = 0, answered = 0;
    for (const LiveShardSnapshot& s : shards) {
      parsed += s.requests;
      answered += s.responses + s.failures + s.not_found;
    }
    return parsed == load.issued && answered == parsed;
  }
  double worker_hit_rate() const noexcept {
    std::uint64_t h = 0, m = 0;
    for (const auto& w : workers) {
      h += w.cache_hits;
      m += w.cache_misses;
    }
    return h + m ? static_cast<double>(h) / static_cast<double>(h + m) : 0.0;
  }
};

/// Blocking end-to-end run. Builds site/trace/mining from the config,
/// serves it over loopback sockets, replays the workload, and returns the
/// consolidated result.
LiveRunResult run_live(const LiveConfig& config);

/// One-shot GET `target` against 127.0.0.1:`port`; empty string on any
/// failure. Used for /metrics scrapes.
std::string http_get(std::uint16_t port, std::string_view target);

/// Workload/site/model assembly shared by run_live() and the sharded
/// runner (scale::run_live_sharded): experiment config, train/eval
/// workloads, cache sizing, and the mining model — everything upstream of
/// sockets and threads.
struct LiveSetup {
  core::ExperimentConfig cfg;
  trace::Workload train;
  trace::Workload eval;
  std::uint64_t site_bytes = 0;
  std::uint64_t capacity = 0;  ///< per-backend cache bytes
  std::uint64_t pinned = 0;    ///< reserved for proactive placement
  std::uint64_t demand = 0;    ///< capacity - pinned
  /// Resolved mining options — sharded runs build one extra MiningModel
  /// per shard from these (PRORD's popularity tracking mutates the model,
  /// so shards must not share one).
  logmining::MiningConfig mining;
  std::shared_ptr<logmining::MiningModel> model;  ///< null for non-mining
  std::string workload_name;
};

/// False when the workload cannot be built (e.g. unreadable clf_path).
bool prepare_live_setup(const LiveConfig& config, LiveSetup& out);

/// Appends one backend worker's prord_live_backend_* counters to `reg`
/// (shared between the plain and sharded registry builders so metric
/// names stay single-sourced).
void append_backend_metrics(obs::MetricRegistry& reg,
                            const BackendWorker& worker);

/// Appends the prediction-service-side prord_predict_* metrics (feed,
/// mining, table occupancy — not the distributor's prefetch counters).
void append_predictor_service_metrics(obs::MetricRegistry& reg,
                                      const predict::IPredictor& predictor);

/// Copies a worker's atomic counters into a snapshot.
LiveWorkerSnapshot snapshot_worker(const BackendWorker& worker);

}  // namespace prord::net
