#include "net/backend_worker.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/trace_context.h"

namespace prord::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BackendWorker::BackendWorker(std::uint32_t id, const SiteStore& site,
                             std::uint64_t cache_capacity)
    : id_(id), site_(site), capacity_(cache_capacity) {}

BackendWorker::~BackendWorker() { stop(); }

bool BackendWorker::start() {
  if (started_) return true;
  port_ = 0;
  listen_ = listen_loopback(port_);
  if (!listen_ || !loop_.valid()) return false;
  if (!set_nonblocking(listen_.get())) return false;
  if (!loop_.add(listen_.get(), EPOLLIN, 0)) return false;
  started_ = true;
  thread_ = std::thread([this] { run(); });
  return true;
}

void BackendWorker::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  loop_.wake();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void BackendWorker::preload(trace::FileId file, std::uint32_t bytes,
                            bool /*pinned*/) {
  if (file == trace::kInvalidFile || file >= site_.count()) return;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(file);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // refresh
      return;
    }
  }
  (void)bytes;  // the table's size is authoritative
  auto payload = std::make_shared<const std::string>(site_.make_payload(file));
  stats_.preloads.fetch_add(1, std::memory_order_relaxed);
  cache_put(file, std::move(payload));
}

bool BackendWorker::caches(trace::FileId file) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.contains(file);
}

std::shared_ptr<const std::string> BackendWorker::cache_get(
    trace::FileId file) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(file);
  if (it == cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.payload;
}

void BackendWorker::cache_put(trace::FileId file,
                              std::shared_ptr<const std::string> payload) {
  const std::uint64_t bytes = payload->size();
  if (capacity_ > 0 && bytes > capacity_) return;  // streamed, never cached
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(file);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (capacity_ > 0 && cached_bytes_ + bytes > capacity_ && !lru_.empty()) {
    const trace::FileId victim = lru_.back();
    lru_.pop_back();
    auto vit = cache_.find(victim);
    if (vit != cache_.end()) {
      cached_bytes_ -= vit->second.payload->size();
      obs::flight_record(obs::FlightEventType::kCacheEvict, id_, victim,
                         vit->second.payload->size());
      cache_.erase(vit);
    }
  }
  lru_.push_front(file);
  cache_.emplace(file, CacheEntry{std::move(payload), lru_.begin()});
  cached_bytes_ += bytes;
}

void BackendWorker::run() {
  obs::FlightRecorder& flight = obs::FlightRecorder::instance();
  if (flight.enabled())
    flight.name_thread_ring("backend" + std::to_string(id_));
  std::array<epoll_event, 64> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = loop_.wait(events, /*timeout_ms=*/200);
    if (n < 0) break;
    for (int i = 0; i < n; ++i) {
      const auto& ev = events[static_cast<std::size_t>(i)];
      const std::uint64_t key = ev.data.u64;
      if (key == EpollLoop::kWakeKey) continue;
      if (key == 0) {
        // Listen socket: accept everything pending.
        while (true) {
          const int cfd =
              ::accept4(listen_.get(), nullptr, nullptr, SOCK_CLOEXEC);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          set_nodelay(cfd);
          const std::uint64_t ckey = next_conn_key_++;
          Conn conn;
          conn.fd = Fd(cfd);
          conn.key = ckey;
          auto [it, ok] = conns_.emplace(ckey, std::move(conn));
          if (ok && !loop_.add(cfd, EPOLLIN, ckey)) conns_.erase(it);
        }
        continue;
      }
      auto it = conns_.find(key);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      bool dead = false;
      if (ev.events & (EPOLLHUP | EPOLLERR)) dead = true;
      if (!dead && (ev.events & EPOLLIN)) {
        handle_readable(conn);
        dead = conn.parser.failed() && conn.out_off >= conn.out.size();
      }
      if (!dead && (ev.events & (EPOLLIN | EPOLLOUT))) dead = !flush(conn);
      if (!dead && conn.closing && conn.out_off >= conn.out.size())
        dead = true;
      if (dead) {
        loop_.del(conn.fd.get());
        conns_.erase(it);
      }
    }
  }
}

void BackendWorker::handle_readable(Conn& conn) {
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      if (!conn.parser.consume(std::string_view(buf,
                                                static_cast<std::size_t>(n))))
        conn.closing = true;
      while (auto req = conn.parser.pop()) serve_request(conn, *req);
      continue;
    }
    if (n == 0) {  // orderly shutdown from the peer
      conn.closing = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.closing = true;
    return;
  }
}

void BackendWorker::serve_request(Conn& conn, const HttpRequest& req) {
  // Cache-warming request class (docs/PREDICTOR.md): load the payload
  // into the LRU but send only a tiny ack back — the point is residency,
  // not bytes on the loopback — and keep every client-facing counter
  // untouched.
  if (req.header("X-Prord-Prefetch") != nullptr) {
    stats_.prefetch_requests.fetch_add(1, std::memory_order_relaxed);
    std::string extra = "X-Backend: " + std::to_string(id_) + "\r\n";
    const trace::FileId file = site_.lookup(req.target);
    if (file == trace::kInvalidFile || SiteStore::is_dynamic(req.target)) {
      conn.out += format_response(204, "No Content", "", extra);
      if (!req.keep_alive) conn.closing = true;
      return;
    }
    if (cache_get(file)) {
      stats_.prefetch_resident.fetch_add(1, std::memory_order_relaxed);
      extra += "X-Cache: HIT\r\n";
    } else {
      cache_put(file, std::make_shared<const std::string>(
                          site_.make_payload(file)));
      stats_.prefetch_loads.fetch_add(1, std::memory_order_relaxed);
      extra += "X-Cache: MISS\r\n";
    }
    conn.out += format_response(200, "OK", "warmed\n", extra);
    if (!req.keep_alive) conn.closing = true;
    return;
  }

  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  std::string extra = "X-Backend: " + std::to_string(id_) + "\r\n";

  // Traced request (docs/OBSERVABILITY.md "Live tracing"): measure the
  // cache section and the total handling time, and echo both back —
  // X-Prord-Serve-Us / X-Prord-Cache-Us let the distributor split its
  // measured round trip into queue-wait vs back-end work. The trace
  // header itself is echoed with the hop sequence bumped (0 = distributor
  // origin, 1 = this worker). Untraced requests pay one header lookup.
  const std::string* trace_hdr = req.header(obs::kTraceHeader);
  const bool traced = trace_hdr != nullptr;
  const std::int64_t t_start = traced ? steady_us() : 0;
  std::int64_t cache_us = 0;

  const auto finish = [&](int status, std::string_view reason,
                          std::string_view body) {
    if (traced) {
      auto context = obs::parse_trace_header(*trace_hdr);
      if (context) {
        context->hop += 1;
        extra += "X-Prord-Trace: ";
        extra += obs::format_trace_header(*context);
        extra += "\r\n";
      }
      const std::int64_t serve_us =
          std::max<std::int64_t>(steady_us() - t_start, cache_us);
      extra += "X-Prord-Serve-Us: " + std::to_string(serve_us) + "\r\n";
      extra += "X-Prord-Cache-Us: " + std::to_string(cache_us) + "\r\n";
    }
    conn.out += format_response(status, reason, body, extra);
    if (!req.keep_alive) conn.closing = true;
  };

  const trace::FileId file = site_.lookup(req.target);
  if (file == trace::kInvalidFile) {
    stats_.not_found.fetch_add(1, std::memory_order_relaxed);
    finish(404, "Not Found", "missing\n");
    return;
  }

  if (SiteStore::is_dynamic(req.target)) {
    // CPU-generated content: never cached, body rebuilt per request.
    stats_.dynamic_served.fetch_add(1, std::memory_order_relaxed);
    const std::string body = site_.make_payload(file);
    stats_.bytes_out.fetch_add(body.size(), std::memory_order_relaxed);
    extra += "X-Cache: DYN\r\n";
    finish(200, "OK", body);
    return;
  }

  const std::int64_t t_cache = traced ? steady_us() : 0;
  std::shared_ptr<const std::string> payload = cache_get(file);
  if (payload) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    extra += "X-Cache: HIT\r\n";
  } else {
    stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    payload =
        std::make_shared<const std::string>(site_.make_payload(file));
    cache_put(file, payload);
    extra += "X-Cache: MISS\r\n";
  }
  if (traced) cache_us = steady_us() - t_cache;
  stats_.bytes_out.fetch_add(payload->size(), std::memory_order_relaxed);
  finish(200, "OK", *payload);
}

bool BackendWorker::flush(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Kernel buffer full: watch for writability until drained.
      if (!conn.want_write) {
        conn.want_write = true;
        loop_.mod(conn.fd.get(), EPOLLIN | EPOLLOUT, conn.key);
      }
      return true;
    }
    if (errno == EINTR) continue;
    return false;
  }
  if (conn.out_off == conn.out.size() && conn.out_off > 0) {
    conn.out.clear();
    conn.out_off = 0;
  }
  if (conn.want_write) {
    conn.want_write = false;
    loop_.mod(conn.fd.get(), EPOLLIN, conn.key);
  }
  return true;
}

}  // namespace prord::net
