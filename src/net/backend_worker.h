// BackendWorker: one real serving node of the live loopback cluster.
//
// Each worker runs its own epoll loop on its own thread, listening on an
// ephemeral loopback port. The distributor holds one persistent upstream
// connection per worker and forwards client requests over it; the worker
// answers from an in-memory byte-capacity LRU of materialized payloads
// (there is no filesystem — SiteStore::make_payload is the "disk").
//
// Proactive placement (PRORD prefetch directives and Algorithm 3 replica
// pushes) arrives via preload(), called from the distributor thread when
// the belief model's BackendServer fires its proactive observer — the
// worker cache and the belief cache stay in step. The cache is guarded by
// a mutex: serving and preloading contend only on lookup/insert, and
// payload materialization happens outside the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.h"
#include "net/site_store.h"
#include "net/socket.h"

namespace prord::net {

struct WorkerStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> dynamic_served{0};
  std::atomic<std::uint64_t> preloads{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> not_found{0};
  // X-Prord-Prefetch requests (docs/PREDICTOR.md): accounted separately so
  // cache-warming traffic never dilutes the client hit-rate above.
  std::atomic<std::uint64_t> prefetch_requests{0};
  std::atomic<std::uint64_t> prefetch_resident{0};  ///< already cached
  std::atomic<std::uint64_t> prefetch_loads{0};     ///< read from "disk"
};

class BackendWorker {
 public:
  /// `site` is borrowed and must outlive the worker. `cache_capacity` is
  /// the byte budget for materialized payloads (0 = cache everything).
  BackendWorker(std::uint32_t id, const SiteStore& site,
                std::uint64_t cache_capacity);
  ~BackendWorker();
  BackendWorker(const BackendWorker&) = delete;
  BackendWorker& operator=(const BackendWorker&) = delete;

  /// Binds the listen socket and starts the serving thread. Returns false
  /// when the socket setup failed.
  bool start();
  /// Stops the loop and joins the thread (idempotent).
  void stop();

  std::uint32_t id() const noexcept { return id_; }
  /// Valid after start().
  std::uint16_t port() const noexcept { return port_; }
  const WorkerStats& stats() const noexcept { return stats_; }

  /// Thread-safe proactive load: materializes the payload and installs it
  /// in the cache (refreshing LRU position if already resident). `pinned`
  /// is advisory here — the worker cache is a single LRU; the two-region
  /// accounting lives in the distributor's belief model.
  void preload(trace::FileId file, std::uint32_t bytes, bool pinned);

  /// True when `file`'s payload is resident right now (parity/debugging).
  bool caches(trace::FileId file) const;

 private:
  struct Conn {
    Fd fd;
    std::uint64_t key = 0;  ///< epoll registration key
    RequestParser parser;
    std::string out;
    std::size_t out_off = 0;
    bool closing = false;     ///< flush out, then close
    bool want_write = false;  ///< EPOLLOUT currently armed
  };

  void run();
  void handle_readable(Conn& conn);
  bool flush(Conn& conn);  ///< false when the connection must die
  void serve_request(Conn& conn, const HttpRequest& req);
  std::shared_ptr<const std::string> cache_get(trace::FileId file);
  void cache_put(trace::FileId file,
                 std::shared_ptr<const std::string> payload);

  const std::uint32_t id_;
  const SiteStore& site_;
  const std::uint64_t capacity_;

  Fd listen_;
  std::uint16_t port_ = 0;
  EpollLoop loop_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::unordered_map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_key_ = 1;

  // Byte-capacity LRU over materialized payloads.
  mutable std::mutex cache_mu_;
  std::list<trace::FileId> lru_;  ///< front = most recent
  struct CacheEntry {
    std::shared_ptr<const std::string> payload;
    std::list<trace::FileId>::iterator lru_it;
  };
  std::unordered_map<trace::FileId, CacheEntry> cache_;
  std::uint64_t cached_bytes_ = 0;

  WorkerStats stats_;
};

}  // namespace prord::net
