// Minimal incremental HTTP/1.1 message parsing for the live loopback
// cluster (docs/LIVE_CLUSTER.md).
//
// Scope: exactly what the distributor, the backend workers, and the load
// generator exchange — GET-style requests without bodies (a Content-Length
// body is tolerated and skipped) and responses framed by Content-Length.
// No chunked transfer coding, no HTTP/1.0 keep-alive negotiation beyond
// the Connection header, no continuation lines. Parsers are push-style:
// feed whatever bytes the socket produced with consume(), pop complete
// messages until empty, repeat. A protocol error latches: consume()
// returns false and the connection should be dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prord::net {

/// Header block cap: a peer that streams an unbounded header section is
/// broken or hostile; drop it instead of buffering forever.
inline constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
/// Response body cap (64 MiB — far above any synthetic site file).
inline constexpr std::size_t kMaxBodyBytes = 64ull * 1024 * 1024;

struct HttpRequest {
  std::string method;
  std::string target;   ///< origin-form path, e.g. "/d/17.html"
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  bool keep_alive = true;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const;
};

struct HttpResponse {
  int status = 0;
  std::string reason;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  const std::string* header(std::string_view name) const;
};

class RequestParser {
 public:
  /// Appends raw socket bytes. Returns false once the stream is
  /// irrecoverably malformed (error() explains); complete requests parsed
  /// before the error are still poppable.
  bool consume(std::string_view data);

  /// Next complete request, in arrival order.
  std::optional<HttpRequest> pop();

  bool failed() const noexcept { return failed_; }
  const std::string& error() const noexcept { return error_; }

 private:
  bool parse_some();
  void fail(std::string what);

  std::string buf_;
  std::size_t body_skip_ = 0;  ///< request-body bytes still to discard
  std::deque<HttpRequest> ready_;
  bool failed_ = false;
  std::string error_;
};

class ResponseParser {
 public:
  bool consume(std::string_view data);
  std::optional<HttpResponse> pop();

  bool failed() const noexcept { return failed_; }
  const std::string& error() const noexcept { return error_; }

 private:
  bool parse_some();
  void fail(std::string what);

  std::string buf_;
  std::optional<HttpResponse> partial_;  ///< headers done, body incomplete
  std::size_t body_needed_ = 0;
  std::deque<HttpResponse> ready_;
  bool failed_ = false;
  std::string error_;
};

/// Serializes a GET request (the only method the cluster exchanges).
std::string format_request(std::string_view target,
                           std::string_view host = "prord",
                           std::string_view extra_headers = {});

/// Serializes a response with Content-Length framing. `extra_headers`
/// must be complete "Name: value\r\n" lines when non-empty.
std::string format_response(int status, std::string_view reason,
                            std::string_view body,
                            std::string_view extra_headers = {});

}  // namespace prord::net
