#include "net/live_router.h"

#include <utility>

namespace prord::net {

LiveRouter::LiveRouter(const core::ExperimentConfig& config,
                       std::shared_ptr<logmining::MiningModel> model,
                       const trace::FileTable& files,
                       std::uint64_t demand_bytes, std::uint64_t pinned_bytes)
    : cluster_(sim_, config.params, demand_bytes, pinned_bytes),
      // time_scale 1.0: the live cluster runs on the wall clock, so policy
      // timers (replica TTL, replication period) are used verbatim.
      policy_(core::create_policy(config, std::move(model), files, 1.0)),
      routing_(cluster_, *policy_) {}

LiveRouter::~LiveRouter() = default;

void LiveRouter::advance_to(sim::SimTime t) {
  if (t <= sim_.now()) return;
  // Pin the horizon with a no-op so the clock lands exactly on `t` even
  // when the pending-event set drains (policies without periodic work).
  sim_.schedule_at(t, [] {});
  sim_.run(t);
}

}  // namespace prord::net
