#include "net/load_generator.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>

namespace prord::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

std::int64_t now_us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

LoadGenerator::LoadGenerator(const trace::Workload& workload,
                             LoadGenOptions options)
    : workload_(workload), options_(options) {
  if (options_.concurrency == 0) options_.concurrency = 1;
  if (options_.pipeline_depth == 0) options_.pipeline_depth = 1;
  if (options_.time_scale <= 0) options_.time_scale = 1.0;

  channels_.resize(options_.concurrency);
  for (std::size_t i = 0; i < workload_.requests.size(); ++i) {
    const std::size_t ch =
        workload_.requests[i].conn % options_.concurrency;
    channels_[ch].plan.push_back(i);
  }
  // Channels that drew no trace connection stay idle; effective
  // concurrency is min(concurrency, distinct trace connections).
  std::erase_if(channels_, [](const Channel& c) { return c.plan.empty(); });

  budget_ = options_.total_requests ? options_.total_requests
                                    : workload_.requests.size();
}

bool LoadGenerator::send_next(Channel& ch, std::int64_t now_us) {
  if (budget_ == 0 || ch.plan.empty() || !ch.fd.valid()) return false;
  const std::size_t idx = ch.plan[ch.cursor % ch.plan.size()];
  ++ch.cursor;
  const trace::Request& req = workload_.requests[idx];
  ch.out += format_request(workload_.files.url(req.file));
  ch.sent_at_us.push_back(now_us);
  ++ch.issued;
  ++result_.issued;
  --budget_;
  return true;
}

void LoadGenerator::fail_inflight(Channel& ch) {
  result_.failed += ch.sent_at_us.size();
  ch.sent_at_us.clear();
  ch.out.clear();
  ch.out_off = 0;
}

bool LoadGenerator::reconnect(Channel& ch, std::size_t idx) {
  if (ch.fd.valid()) loop_.del(ch.fd.get());
  ch.fd = connect_loopback(options_.port);
  if (!ch.fd) return false;
  set_nonblocking(ch.fd.get());
  ch.parser = ResponseParser{};
  ch.want_write = false;
  return loop_.add(ch.fd.get(), EPOLLIN, idx);
}

bool LoadGenerator::flush(Channel& ch, std::size_t idx) {
  while (ch.out_off < ch.out.size()) {
    const ssize_t n = ::send(ch.fd.get(), ch.out.data() + ch.out_off,
                             ch.out.size() - ch.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      ch.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!ch.want_write) {
        ch.want_write = true;
        loop_.mod(ch.fd.get(), EPOLLIN | EPOLLOUT, idx);
      }
      return true;
    }
    if (errno == EINTR) continue;
    return false;
  }
  if (ch.out_off == ch.out.size() && ch.out_off > 0) {
    ch.out.clear();
    ch.out_off = 0;
  }
  if (ch.want_write) {
    ch.want_write = false;
    loop_.mod(ch.fd.get(), EPOLLIN, idx);
  }
  return true;
}

LoadGenResult LoadGenerator::run() {
  const auto t0 = std::chrono::steady_clock::now();
  if (!loop_.valid() || channels_.empty() || workload_.requests.empty())
    return std::move(result_);

  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (!reconnect(channels_[i], i)) fail_inflight(channels_[i]);
  }

  // Open loop: per-channel trace arrival schedule (µs, compressed).
  // Replays past the first pass shift by the trace span + 1 s per cycle.
  const auto arrival_us = [this](const Channel& ch) -> std::int64_t {
    const std::size_t pos = ch.cursor % ch.plan.size();
    const auto cycle =
        static_cast<std::int64_t>(ch.cursor / ch.plan.size());
    const std::int64_t base = static_cast<std::int64_t>(
        static_cast<double>(workload_.requests[ch.plan[pos]].at) /
        options_.time_scale);
    const std::int64_t span = static_cast<std::int64_t>(
        static_cast<double>(workload_.span()) / options_.time_scale);
    return base + cycle * (span + 1'000'000);
  };

  // Prime the pipelines.
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    Channel& ch = channels_[i];
    if (!ch.fd.valid()) continue;
    if (options_.open_loop) continue;  // paced sends happen in the loop
    for (std::size_t d = 0; d < options_.pipeline_depth; ++d)
      if (!send_next(ch, now_us_since(t0))) break;
    if (!flush(ch, i)) {
      fail_inflight(ch);
      if (!reconnect(ch, i)) ch.fd.reset();
    }
  }

  std::array<epoll_event, 64> events;
  std::int64_t last_progress = now_us_since(t0);
  while (result_.completed + result_.failed < result_.issued ||
         budget_ > 0) {
    const std::int64_t now = now_us_since(t0);
    if (now - last_progress > options_.idle_timeout_us) {
      for (Channel& ch : channels_) fail_inflight(ch);
      break;
    }
    // Open loop: emit every due request.
    if (options_.open_loop) {
      for (std::size_t i = 0; i < channels_.size(); ++i) {
        Channel& ch = channels_[i];
        if (!ch.fd.valid() || ch.plan.empty()) continue;
        bool sent = false;
        while (budget_ > 0 && arrival_us(ch) <= now) {
          if (!send_next(ch, now)) break;
          sent = true;
        }
        if (sent && !flush(ch, i)) {
          fail_inflight(ch);
          if (!reconnect(ch, i)) ch.fd.reset();
        }
      }
    }
    const int n = loop_.wait(events, /*timeout_ms=*/options_.open_loop ? 2
                                                                       : 100);
    if (n < 0) break;
    for (int e = 0; e < n; ++e) {
      const auto& ev = events[static_cast<std::size_t>(e)];
      const std::uint64_t key = ev.data.u64;
      if (key == EpollLoop::kWakeKey) continue;
      const std::size_t i = static_cast<std::size_t>(key);
      if (i >= channels_.size()) continue;
      Channel& ch = channels_[i];
      if (!ch.fd.valid()) continue;
      bool broken = (ev.events & (EPOLLHUP | EPOLLERR)) != 0;
      if (!broken && (ev.events & EPOLLIN)) {
        char buf[kReadChunk];
        while (true) {
          const ssize_t r = ::recv(ch.fd.get(), buf, sizeof(buf), 0);
          if (r > 0) {
            if (!ch.parser.consume(
                    std::string_view(buf, static_cast<std::size_t>(r)))) {
              broken = true;
              break;
            }
            const std::int64_t rx = now_us_since(t0);
            while (auto resp = ch.parser.pop()) {
              ++result_.completed;
              result_.bytes_in += resp->body.size();
              if (resp->status >= 200 && resp->status < 300)
                ++result_.status_ok;
              else
                ++result_.status_error;
              if (!ch.sent_at_us.empty()) {
                const double lat =
                    static_cast<double>(rx - ch.sent_at_us.front());
                ch.sent_at_us.pop_front();
                result_.latency_us.add(lat);
                result_.latency_hist.record(
                    static_cast<std::uint64_t>(lat < 0 ? 0 : lat));
              }
              last_progress = rx;
              if (!options_.open_loop) send_next(ch, rx);
            }
            continue;
          }
          if (r == 0) {
            broken = true;
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          broken = true;
          break;
        }
      }
      if (!broken && (ev.events & (EPOLLIN | EPOLLOUT)))
        broken = !flush(ch, i);
      if (broken) {
        fail_inflight(ch);
        if (!reconnect(ch, i)) ch.fd.reset();
      }
    }
  }

  for (Channel& ch : channels_)
    if (ch.fd.valid()) loop_.del(ch.fd.get());
  result_.duration_s =
      static_cast<double>(now_us_since(t0)) / 1'000'000.0;
  return std::move(result_);
}

}  // namespace prord::net
