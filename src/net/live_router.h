// LiveRouter: the distributor's belief model.
//
// The policies (WRR/LARD/Ext-LARD-PHTTP/PRESS/PRORD) were written against
// the simulated cluster: they read back-end load, cache contents and the
// simulation clock, and PRORD schedules its Algorithm 3 replication
// rounds as periodic simulator events. Rather than port them to sockets,
// the live distributor keeps a cluster::Cluster as *belief state*: wall
// time since run start maps onto the simulation clock (advance_to), real
// in-flight requests mirror into BackendServer::live_begin/live_end, and
// routing decisions flow through the same core::RoutingCore the workload
// player uses — one routing code path for sim and live, which the
// routing-parity test pins.
//
// Single-threaded by contract: every method runs on the distributor's
// event-loop thread.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/cluster.h"
#include "core/experiment.h"
#include "core/routing_core.h"
#include "logmining/mining_model.h"
#include "simcore/simulator.h"
#include "trace/workload.h"

namespace prord::net {

class LiveRouter {
 public:
  /// `files` is borrowed and must outlive the router; `model` may be null
  /// for policies that don't mine. Cache capacities are per back-end
  /// bytes for the belief caches (mirroring what the real workers get).
  LiveRouter(const core::ExperimentConfig& config,
             std::shared_ptr<logmining::MiningModel> model,
             const trace::FileTable& files, std::uint64_t demand_bytes,
             std::uint64_t pinned_bytes);
  ~LiveRouter();

  void start() { policy_->start(cluster_); }
  void finish() { policy_->finish(cluster_); }

  /// Advances the belief clock to `t` (µs since run start). Periodic
  /// policy work scheduled in (now, t] — PRORD replication rounds,
  /// belief-cache disk completions — fires here.
  void advance_to(sim::SimTime t);

  /// Routes and commits one request through the shared RoutingCore.
  core::RoutedRequest route(const trace::Request& req) {
    return routing_.route(req);
  }

  /// The request was forwarded to worker `server`: mirror the in-flight
  /// load + demand cache into belief, then fire the policy's proactive
  /// machinery (bundle prefetch etc.).
  void on_forwarded(const trace::Request& req, policies::ServerId server) {
    cluster_.backend(server).live_begin(req.file, req.bytes, req.is_dynamic);
    routing_.notify_routed(req, server);
  }

  /// The worker's response reached the distributor.
  void on_response(const trace::Request& req, policies::ServerId server) {
    cluster_.backend(server).live_end();
    routing_.notify_complete(req, server);
  }

  /// The request failed (upstream connection died): release belief load
  /// and unstick the client connection.
  void on_failure(const trace::Request& req, policies::ServerId server) {
    cluster_.backend(server).live_end();
    routing_.unstick(req.conn, server);
  }

  void forget_connection(std::uint32_t conn) { routing_.forget(conn); }

  cluster::Cluster& cluster() noexcept { return cluster_; }
  core::RoutingCore& core() noexcept { return routing_; }
  sim::Simulator& sim() noexcept { return sim_; }
  policies::DistributionPolicy& policy() noexcept { return *policy_; }

 private:
  sim::Simulator sim_;
  cluster::Cluster cluster_;
  std::unique_ptr<policies::DistributionPolicy> policy_;
  core::RoutingCore routing_;
};

}  // namespace prord::net
