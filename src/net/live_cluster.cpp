#include "net/live_cluster.h"

#include <sys/socket.h>

#include <fstream>
#include <memory>
#include <utility>

#include "net/backend_worker.h"
#include "net/distributor.h"
#include "net/live_router.h"
#include "net/site_store.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "trace/clf.h"
#include "trace/generator.h"
#include "trace/site_model.h"
#include "trace/workload.h"

namespace prord::net {
namespace {

/// Snapshot everything observable into a registry. Called both by the
/// distributor's /metrics provider (on the distributor thread, while the
/// run is live) and once more after teardown for LiveRunResult::registry.
obs::MetricRegistry build_registry(const Distributor& dist,
                                   const core::RoutingCore& core,
                                   const std::vector<std::unique_ptr<BackendWorker>>& workers,
                                   const LoadGenResult* load,
                                   const predict::IPredictor* predictor) {
  obs::MetricRegistry reg;
  const auto& c = dist.counters();
  reg.set_help("prord_live_requests_total",
               "Client requests parsed by the distributor");
  reg.counter_add("prord_live_requests_total", {},
                  static_cast<double>(c.requests.load()));
  reg.counter_add("prord_live_responses_total", {},
                  static_cast<double>(c.responses.load()));
  reg.counter_add("prord_live_failures_total", {},
                  static_cast<double>(c.failures.load()));
  reg.counter_add("prord_live_not_found_total", {},
                  static_cast<double>(c.not_found.load()));
  reg.counter_add("prord_live_parse_errors_total", {},
                  static_cast<double>(c.parse_errors.load()));
  reg.counter_add("prord_live_metrics_scrapes_total", {},
                  static_cast<double>(c.metrics_scrapes.load()));

  reg.set_help("prord_live_routed_total",
               "Requests committed through the shared RoutingCore");
  reg.counter_add("prord_live_routed_total", {},
                  static_cast<double>(core.routed()));
  reg.counter_add("prord_live_dispatches_total", {},
                  static_cast<double>(core.dispatches()));
  reg.counter_add("prord_live_handoffs_total", {},
                  static_cast<double>(core.handoffs()));
  reg.counter_add("prord_live_forwards_total", {},
                  static_cast<double>(core.forwards()));
  const auto& via = core.routes_via();
  for (unsigned v = 0; v < obs::kNumRouteVia; ++v) {
    reg.counter_add(
        "prord_live_routes_via_total",
        {{"via", obs::route_via_name(static_cast<obs::RouteVia>(v))}},
        static_cast<double>(via[v]));
  }

  for (const auto& w : workers) append_backend_metrics(reg, *w);

  // Prediction subsystem (docs/PREDICTOR.md), present when the live
  // prefetch seam is armed.
  if (predictor != nullptr) {
    append_predictor_service_metrics(reg, *predictor);

    reg.set_help("prord_predict_prefetch_issued_total",
                 "Cache-warming requests sent to backend workers");
    reg.counter_add("prord_predict_prefetch_issued_total", {},
                    static_cast<double>(c.prefetch_issued.load()));
    reg.counter_add("prord_predict_prefetch_responses_total", {},
                    static_cast<double>(c.prefetch_responses.load()));
    reg.set_help("prord_predict_prefetch_hits_total",
                 "Client cache hits on files this distributor prefetched");
    reg.counter_add("prord_predict_prefetch_hits_total", {},
                    static_cast<double>(c.prefetch_hits.load()));
    reg.counter_add("prord_predict_prefetch_wasted_total", {},
                    static_cast<double>(c.prefetch_wasted.load()));
    reg.counter_add("prord_predict_queue_drop_events_total", {},
                    static_cast<double>(c.predict_drops.load()));
  }

  // Tracing + SLO posture (docs/OBSERVABILITY.md).
  const auto& obs_opts = dist.obs_options();
  reg.set_help("prord_live_trace_spans_total",
               "Completed live hop spans retained by the distributor");
  reg.counter_add("prord_live_trace_spans_total", {},
                  static_cast<double>(c.trace_spans.load()));
  reg.counter_add("prord_live_trace_dropped_total", {},
                  static_cast<double>(c.trace_dropped.load()));
  reg.gauge_set("prord_live_trace_sample_rate", obs_opts.trace_sample_rate);

  const obs::SloEval slo = dist.slo().evaluate(dist.elapsed_us());
  reg.set_help("prord_live_slo_burn_rate",
               "Error rate over error budget per rolling window");
  reg.gauge_set("prord_live_slo_burn_rate", {{"window", "short"}},
                slo.short_window.burn_rate);
  reg.gauge_set("prord_live_slo_burn_rate", {{"window", "long"}},
                slo.long_window.burn_rate);
  reg.gauge_set("prord_live_slo_error_rate", {{"window", "short"}},
                slo.short_window.error_rate);
  reg.gauge_set("prord_live_slo_error_rate", {{"window", "long"}},
                slo.long_window.error_rate);
  reg.gauge_set("prord_live_slo_violating", slo.violating ? 1.0 : 0.0);
  reg.counter_add("prord_live_slo_violations_total", {},
                  static_cast<double>(c.slo_violations.load()));
  reg.counter_add("prord_live_flight_dumps_total", {},
                  static_cast<double>(c.flight_dumps.load()));
  reg.gauge_set("prord_live_slo_latency_objective_us",
                static_cast<double>(obs_opts.slo.latency_objective_us));
  reg.gauge_set("prord_live_slo_availability_objective",
                obs_opts.slo.availability_objective);

  if (load != nullptr) {
    reg.counter_add("prord_live_client_issued_total", {},
                    static_cast<double>(load->issued));
    reg.counter_add("prord_live_client_completed_total", {},
                    static_cast<double>(load->completed));
    reg.counter_add("prord_live_client_failed_total", {},
                    static_cast<double>(load->failed));
    reg.gauge_set("prord_live_client_throughput_rps", load->throughput_rps());
    reg.set_help("prord_live_client_latency_us",
                 "Send-to-response wall-clock latency per request");
    reg.stats_merge("prord_live_client_latency_us", {}, load->latency_us);
    if (load->latency_hist.count() > 0)
      reg.histogram_merge("prord_live_client_latency_us_hist", {},
                          load->latency_hist);

    // Final (post-run) snapshot only: per-hop latency decomposition over
    // the collected spans — too heavy for a live scrape.
    reg.set_help("prord_live_hop_us",
                 "Per-hop wall-clock time across sampled live spans");
    for (const obs::LiveSpan& span : dist.spans()) {
      for (unsigned h = 0; h < obs::kNumLiveHops; ++h) {
        reg.stats_add("prord_live_hop_us",
                      {{"hop", obs::live_hop_name(
                                   static_cast<obs::LiveHop>(h))}},
                      static_cast<double>(span.hop_us[h]));
      }
    }
  }
  return reg;
}

}  // namespace

void append_backend_metrics(obs::MetricRegistry& reg,
                            const BackendWorker& worker) {
  const obs::Labels labels{{"backend", std::to_string(worker.id())}};
  const auto& s = worker.stats();
  reg.counter_add("prord_live_backend_requests_total", labels,
                  static_cast<double>(s.requests.load()));
  reg.counter_add("prord_live_backend_cache_hits_total", labels,
                  static_cast<double>(s.cache_hits.load()));
  reg.counter_add("prord_live_backend_cache_misses_total", labels,
                  static_cast<double>(s.cache_misses.load()));
  reg.counter_add("prord_live_backend_dynamic_total", labels,
                  static_cast<double>(s.dynamic_served.load()));
  reg.counter_add("prord_live_backend_preloads_total", labels,
                  static_cast<double>(s.preloads.load()));
  reg.counter_add("prord_live_backend_bytes_out_total", labels,
                  static_cast<double>(s.bytes_out.load()));
  reg.counter_add("prord_live_backend_prefetch_requests_total", labels,
                  static_cast<double>(s.prefetch_requests.load()));
  reg.counter_add("prord_live_backend_prefetch_resident_total", labels,
                  static_cast<double>(s.prefetch_resident.load()));
  reg.counter_add("prord_live_backend_prefetch_loads_total", labels,
                  static_cast<double>(s.prefetch_loads.load()));
}

void append_predictor_service_metrics(obs::MetricRegistry& reg,
                                      const predict::IPredictor& predictor) {
  const predict::PredictorStats ps = predictor.stats();
  reg.set_help("prord_predict_feeds_total",
               "Observations accepted by the prediction service");
  reg.counter_add("prord_predict_feeds_total", {},
                  static_cast<double>(ps.feeds));
  reg.set_help("prord_predict_drops_total",
               "Observations dropped on a full feed queue");
  reg.counter_add("prord_predict_drops_total", {},
                  static_cast<double>(ps.drops));
  reg.counter_add("prord_predict_mine_passes_total", {},
                  static_cast<double>(ps.mine_passes));
  reg.counter_add("prord_predict_publishes_total", {},
                  static_cast<double>(ps.publishes));
  reg.counter_add("prord_predict_predictions_total", {},
                  static_cast<double>(ps.predictions));
  reg.gauge_set("prord_predict_links", static_cast<double>(ps.links));
  reg.set_help("prord_predict_table_rows",
               "Bounded-table occupancy by table");
  reg.gauge_set("prord_predict_table_rows", {{"table", "record"}},
                static_cast<double>(ps.record_rows));
  reg.gauge_set("prord_predict_table_rows", {{"table", "mining"}},
                static_cast<double>(ps.mining_rows));
  reg.gauge_set("prord_predict_table_rows", {{"table", "prefetch"}},
                static_cast<double>(ps.prefetch_rows));
  reg.gauge_set("prord_predict_algo",
                {{"algo", predict::algo_name(predictor.params().algo)}},
                1.0);
}

LiveWorkerSnapshot snapshot_worker(const BackendWorker& worker) {
  LiveWorkerSnapshot snap;
  const auto& s = worker.stats();
  snap.requests = s.requests.load();
  snap.cache_hits = s.cache_hits.load();
  snap.cache_misses = s.cache_misses.load();
  snap.dynamic_served = s.dynamic_served.load();
  snap.preloads = s.preloads.load();
  snap.bytes_out = s.bytes_out.load();
  snap.prefetch_requests = s.prefetch_requests.load();
  snap.prefetch_resident = s.prefetch_resident.load();
  snap.prefetch_loads = s.prefetch_loads.load();
  return snap;
}

std::string http_get(std::uint16_t port, std::string_view target) {
  Fd fd = connect_loopback(port);
  if (!fd) return {};
  const std::string req = format_request(target);
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n =
        ::send(fd.get(), req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return {};
    }
    off += static_cast<std::size_t>(n);
  }
  ResponseParser parser;
  char buf[64 * 1024];
  while (true) {
    const ssize_t r = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return {};
    if (!parser.consume(std::string_view(buf, static_cast<std::size_t>(r))))
      return {};
    if (auto resp = parser.pop()) return std::move(resp->body);
  }
}

bool prepare_live_setup(const LiveConfig& config, LiveSetup& out) {
  // --- Workload + site (mirrors run_experiment steps 1-3). ---
  core::ExperimentConfig& cfg = out.cfg;
  cfg.workload = config.workload;
  cfg.policy = config.policy;
  cfg.params.num_backends = config.backends;
  cfg.memory_fraction = config.memory_fraction;
  cfg.pinned_fraction = config.pinned_fraction;
  cfg.prefetch_threshold = config.prefetch_threshold;
  cfg.replication_interval = config.replication_interval;

  if (!config.clf_path.empty()) {
    std::ifstream in(config.clf_path);
    if (!in) return false;
    trace::ClfParser parser;
    const auto records = parser.parse_stream(in);
    if (records.empty()) return false;
    out.eval = trace::build_workload(records);
    // One real log: the mining pass and the replay share it.
    out.train = trace::build_workload(records);
    out.site_bytes = out.eval.files.total_bytes();
    out.workload_name = config.clf_path;
  } else {
    const trace::SiteModel site = trace::build_site(cfg.workload.site);
    const trace::GeneratedTrace eval_trace =
        trace::generate_trace(site, cfg.workload.gen);
    auto train_gen = cfg.workload.gen;
    train_gen.seed += cfg.train_seed_offset;
    const trace::GeneratedTrace train_trace =
        trace::generate_trace(site, train_gen);
    out.train = trace::build_workload(train_trace.records);
    out.eval = trace::build_workload(eval_trace.records, {}, out.train.files);
    out.site_bytes = site.total_bytes();
    out.workload_name = cfg.workload.name;
  }

  out.mining = cfg.mining;
  out.mining.prefetch_threshold = cfg.prefetch_threshold;
  if (core::policy_uses_mining(cfg.policy)) {
    out.model = std::make_shared<logmining::MiningModel>(out.train.requests,
                                                         out.mining);
  }

  // --- Cache sizing (same formula as the sim experiments). ---
  out.capacity =
      cfg.memory_fraction > 0
          ? static_cast<std::uint64_t>(cfg.memory_fraction *
                                       static_cast<double>(out.site_bytes) /
                                       cfg.params.num_backends)
          : cfg.params.app_memory_bytes;
  out.capacity = std::max<std::uint64_t>(out.capacity, 64 * 1024);
  out.pinned = 0;
  if (core::policy_uses_mining(cfg.policy)) {
    out.pinned = static_cast<std::uint64_t>(
        cfg.pinned_fraction * static_cast<double>(out.capacity));
    out.pinned = std::min(out.pinned, cfg.params.pinned_memory_bytes);
  }
  out.demand = out.capacity - out.pinned;
  return true;
}

LiveRunResult run_live(const LiveConfig& config) {
  LiveRunResult result;

  LiveSetup setup;
  if (!prepare_live_setup(config, setup)) return result;
  result.workload = setup.workload_name;
  result.policy = core::policy_label(setup.cfg.policy);
  const core::ExperimentConfig& cfg = setup.cfg;
  trace::Workload& eval = setup.eval;
  const std::shared_ptr<logmining::MiningModel>& model = setup.model;
  const std::uint64_t capacity = setup.capacity;
  const std::uint64_t pinned = setup.pinned;
  const std::uint64_t demand = setup.demand;

  // --- Assemble: workers, belief router, distributor. ---
  // Arm the flight recorder before any serving thread starts, so every
  // thread names its ring on entry.
  if (config.flight_recorder || !config.flight_dump_path.empty())
    obs::FlightRecorder::instance().enable(config.flight_ring_capacity);
  SiteStore store(eval.files);
  std::vector<std::unique_ptr<BackendWorker>> workers;
  std::vector<BackendWorker*> worker_ptrs;
  workers.reserve(config.backends);
  for (std::uint32_t i = 0; i < config.backends; ++i) {
    workers.push_back(std::make_unique<BackendWorker>(i, store, capacity));
    if (!workers.back()->start()) {
      for (auto& w : workers) w->stop();
      return result;
    }
    worker_ptrs.push_back(workers.back().get());
  }

  LiveRouter router(cfg, model, eval.files, demand, pinned);
  // Mirror the policy's proactive placements (prefetch directives,
  // Algorithm 3 replicas) from the belief caches into the real workers.
  for (std::uint32_t i = 0; i < config.backends; ++i) {
    BackendWorker* w = worker_ptrs[i];
    router.cluster().backend(i).set_proactive_observer(
        [w](trace::FileId file, std::uint32_t bytes, bool pin) {
          w->preload(file, bytes, pin);
        });
  }

  // Live prediction service (docs/PREDICTOR.md): runs its own mining
  // thread; the distributor feeds it and issues the prefetches.
  std::unique_ptr<predict::IPredictor> predictor;
  if (config.prefetch) {
    predictor = predict::make_prediction_service(config.predictor, model);
    predictor->start();
  }

  Distributor dist(router, store, worker_ptrs, config.port);
  if (predictor) {
    dist.set_predictor(predictor.get(), config.predictor.confidence,
                       config.predictor.max_associations);
  }
  DistributorObsOptions obs_opts;
  obs_opts.trace_sample_rate = config.trace_sample_rate;
  obs_opts.trace_seed = config.trace_seed;
  obs_opts.max_spans = config.max_spans;
  obs_opts.slo = config.slo;
  obs_opts.flight_dump_path = config.flight_dump_path;
  dist.configure_obs(obs_opts);
  dist.set_metrics_provider([&dist, &router, &workers, &predictor] {
    // Runs on the distributor thread — LiveRouter access is safe there.
    return obs::to_prometheus(
        build_registry(dist, router.core(), workers, nullptr,
                       predictor.get()));
  });
  if (!dist.start()) {
    for (auto& w : workers) w->stop();
    return result;
  }
  result.started = true;

  // --- Replay the workload from this thread. ---
  LoadGenOptions lg;
  lg.port = dist.port();
  lg.concurrency = config.concurrency;
  lg.total_requests = config.requests;
  lg.pipeline_depth = config.pipeline_depth;
  lg.open_loop = config.open_loop;
  lg.time_scale = config.time_scale;
  lg.idle_timeout_us = config.idle_timeout_us;
  LoadGenerator gen(eval, lg);
  result.load = gen.run();

  // Scrape /metrics and /slo over real sockets while the distributor
  // still runs.
  result.metrics_scrape = http_get(dist.port(), "/metrics");
  result.slo_scrape = http_get(dist.port(), "/slo");

  dist.stop();
  for (auto& w : workers) w->stop();
  if (predictor) predictor->stop();  // final drain + publish

  // --- Consolidate. ---
  const auto& c = dist.counters();
  result.dist_requests = c.requests.load();
  result.dist_responses = c.responses.load();
  result.dist_failures = c.failures.load();
  result.dist_not_found = c.not_found.load();
  result.dist_parse_errors = c.parse_errors.load();
  const auto& core = router.core();
  result.routed = core.routed();
  result.dispatches = core.dispatches();
  result.handoffs = core.handoffs();
  result.forwards = core.forwards();
  for (const auto& w : workers) result.workers.push_back(snapshot_worker(*w));

  if (predictor) {
    result.prefetch_enabled = true;
    result.prefetch_algo = predict::algo_name(config.predictor.algo);
    result.prefetch_issued = c.prefetch_issued.load();
    result.prefetch_responses = c.prefetch_responses.load();
    result.prefetch_hits = c.prefetch_hits.load();
    result.prefetch_wasted = c.prefetch_wasted.load();
    result.predict_drops = c.predict_drops.load();
    result.predictor = predictor->stats();
  }

  // --- Observability consolidation. ---
  result.spans = dist.spans();
  result.trace_spans = c.trace_spans.load();
  result.trace_dropped = c.trace_dropped.load();
  result.slo_violations = c.slo_violations.load();
  result.flight_dumps = c.flight_dumps.load();
  result.slo = dist.slo().evaluate(dist.elapsed_us());
  if (!config.trace_out.empty()) {
    std::ofstream out(config.trace_out, std::ios::trunc);
    for (const obs::LiveSpan& span : result.spans) {
      obs::write_live_span_json(out, span);
      out << '\n';
    }
  }

  result.registry =
      build_registry(dist, core, workers, &result.load, predictor.get());
  return result;
}

}  // namespace prord::net
