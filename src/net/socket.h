// Thin RAII wrappers over the Linux socket and epoll syscalls used by the
// live loopback cluster. Everything binds/connects 127.0.0.1 only — this
// is a measurement prototype, not an exposed server.
#pragma once

#include <sys/epoll.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <utility>

namespace prord::net {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  explicit operator bool() const noexcept { return valid(); }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Puts the descriptor in non-blocking mode. Returns false on failure.
bool set_nonblocking(int fd);

/// Disables Nagle (latency over tiny loopback writes). Best-effort.
void set_nodelay(int fd);

/// Listener knobs. The default backlog is sized for accept storms from a
/// multi-threaded load generator — 128 (the old default) overflows during
/// connection bursts and the kernel silently drops SYNs, which shows up as
/// seconds-long retransmit stalls rather than errors.
struct ListenOptions {
  int backlog = 1024;
  /// Request SO_REUSEPORT so several shards can bind the same port and let
  /// the kernel spread connections across them.
  bool reuseport = false;
};

/// True when this kernel accepts SO_REUSEPORT on a TCP socket. Probed once
/// (one throwaway socket) and cached.
bool reuseport_supported();

/// Listening socket bound to 127.0.0.1:`port`; `port` 0 picks an
/// ephemeral port and is updated to the one the kernel chose. Invalid Fd
/// on failure (errno holds the cause).
Fd listen_loopback(std::uint16_t& port, const ListenOptions& options);
Fd listen_loopback(std::uint16_t& port, int backlog = 1024);

/// Blocking connect to 127.0.0.1:`port` (setup path only — the returned
/// socket is switched to non-blocking by the caller when it enters an
/// event loop). Invalid Fd on failure.
Fd connect_loopback(std::uint16_t port);

/// Level-triggered epoll loop with an eventfd wake channel so other
/// threads can interrupt a blocking wait.
class EpollLoop {
 public:
  EpollLoop();
  bool valid() const noexcept { return epoll_.valid() && wake_.valid(); }

  /// Registers `fd` with event mask `events`; `key` comes back in
  /// epoll_event::data.u64. Returns false on syscall failure.
  bool add(int fd, std::uint32_t events, std::uint64_t key);

  /// add() with EPOLLEXCLUSIVE so concurrent listeners on a shared socket
  /// don't all wake per connection (thundering herd). Falls back to a plain
  /// add() where the kernel rejects the flag; `exclusive` (optional) reports
  /// which mode stuck. EPOLLEXCLUSIVE forbids a later mod() on the fd — only
  /// use this for listen sockets whose mask never changes.
  bool add_listener(int fd, std::uint64_t key, bool* exclusive = nullptr);
  bool mod(int fd, std::uint32_t events, std::uint64_t key);
  void del(int fd);

  /// Waits up to `timeout_ms` (-1 = forever). Returns the number of ready
  /// events written to `out`, 0 on timeout, -1 on failure (EINTR is
  /// retried internally). Wake-channel events are consumed and reported
  /// with key == kWakeKey.
  int wait(std::span<epoll_event> out, int timeout_ms);

  /// Thread-safe: makes a concurrent (or the next) wait() return.
  void wake();

  static constexpr std::uint64_t kWakeKey = ~0ull;

 private:
  Fd epoll_;
  Fd wake_;
};

/// Outbound byte queue flushed with one vectored sendmsg() per round
/// instead of one write() per buffered string. Segments keep their
/// identity until fully sent, so enqueueing is copy-free beyond the
/// initial move and a flush of K queued responses costs one syscall.
class OutQueue {
 public:
  void push(std::string bytes) {
    if (bytes.empty()) return;
    size_ += bytes.size();
    segments_.push_back(std::move(bytes));
  }

  bool empty() const noexcept { return segments_.empty(); }
  std::size_t size() const noexcept { return size_; }

  /// Writes as much as the socket accepts (MSG_NOSIGNAL, up to kMaxIov
  /// segments per sendmsg). Returns false on a fatal socket error; EAGAIN
  /// is a successful partial flush.
  bool flush(int fd);

  void clear() {
    segments_.clear();
    head_off_ = 0;
    size_ = 0;
  }

  static constexpr std::size_t kMaxIov = 64;

 private:
  std::deque<std::string> segments_;
  std::size_t head_off_ = 0;  // bytes of segments_.front() already sent
  std::size_t size_ = 0;
};

}  // namespace prord::net
