// LoadGenerator: trace-replay client for the live loopback cluster.
//
// Replays a trace::Workload against the distributor over `concurrency`
// persistent HTTP/1.1 connections (channels). Trace connections hash onto
// channels, so one trace connection's requests stay on one channel in
// trace order. Two driving modes:
//   - closed loop (default): each channel keeps at most `pipeline_depth`
//     requests outstanding and sends the next one when a response lands —
//     the firehose that measures saturation throughput;
//   - open loop (paced): each request is sent at its trace arrival time
//     divided by `time_scale`, regardless of outstanding responses.
// Latency is measured send-to-response per request on the wall clock.
//
// Single-threaded epoll: run() blocks the calling thread until
// `total_requests` have settled (completed + failed) or the inactivity
// timeout trips (remaining in-flight requests are then counted failed, so
// conservation — completed + failed == issued — always holds).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "net/http.h"
#include "net/socket.h"
#include "trace/workload.h"

namespace prord::net {

struct LoadGenOptions {
  std::uint16_t port = 0;            ///< distributor port
  std::size_t concurrency = 16;      ///< parallel channels
  std::size_t total_requests = 0;    ///< 0 = one pass over the workload
  std::size_t pipeline_depth = 1;    ///< closed-loop outstanding cap
  bool open_loop = false;
  double time_scale = 1.0;           ///< open loop: arrival compression
  std::int64_t idle_timeout_us = 10'000'000;  ///< abort when nothing moves
};

struct LoadGenResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;  ///< responses received (any status)
  std::uint64_t failed = 0;     ///< connection loss / timeout casualties
  std::uint64_t status_ok = 0;      ///< 2xx responses
  std::uint64_t status_error = 0;   ///< non-2xx responses
  std::uint64_t bytes_in = 0;
  double duration_s = 0.0;
  metrics::RunningStats latency_us;
  metrics::Histogram latency_hist{1ULL << 32};

  bool conserved() const noexcept { return completed + failed == issued; }
  double throughput_rps() const {
    return duration_s > 0 ? static_cast<double>(completed) / duration_s : 0.0;
  }
};

class LoadGenerator {
 public:
  /// `workload` is borrowed and must outlive run().
  LoadGenerator(const trace::Workload& workload, LoadGenOptions options);

  /// Blocking replay; returns the settled result.
  LoadGenResult run();

 private:
  struct Channel {
    Fd fd;
    ResponseParser parser;
    std::string out;
    std::size_t out_off = 0;
    bool want_write = false;
    std::vector<std::size_t> plan;  ///< workload request indices, in order
    std::size_t cursor = 0;         ///< next plan position (wraps)
    std::deque<std::int64_t> sent_at_us;  ///< in-flight send stamps
    std::uint64_t issued = 0;
  };

  bool send_next(Channel& ch, std::int64_t now_us);
  bool flush(Channel& ch, std::size_t idx);
  void fail_inflight(Channel& ch);
  bool reconnect(Channel& ch, std::size_t idx);

  const trace::Workload& workload_;
  LoadGenOptions options_;
  EpollLoop loop_;
  std::vector<Channel> channels_;
  std::uint64_t budget_ = 0;  ///< requests still to issue
  LoadGenResult result_;
};

}  // namespace prord::net
