#include "net/site_store.h"

namespace prord::net {

std::string SiteStore::make_payload(trace::FileId id) const {
  const std::size_t n = size_bytes(id);
  std::string body;
  body.reserve(n);
  // Leading marker so a reader (or a debugging tcpdump) can tell which
  // file a payload is; filler is a rotating pattern keyed on the id so
  // different files differ byte-wise beyond the prefix.
  const std::string& u = url(id);
  body.append(u, 0, std::min(u.size(), n));
  const char base = static_cast<char>('a' + (id % 26));
  while (body.size() < n)
    body.push_back(static_cast<char>(base + (body.size() % 13)));
  return body;
}

}  // namespace prord::net
