// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in the library flows through `Rng` so that a
// fixed seed reproduces a simulation bit-for-bit. The generator is
// xoshiro256** (Blackman & Vigna), seeded via SplitMix64; both are tiny,
// fast, and have no global state.
#pragma once

#include <cstdint>
#include <limits>

namespace prord::util {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator, so it
/// can drive <random> distributions as well as the samplers in
/// distributions.h.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection to
  /// avoid modulo bias. n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // 128-bit multiply keeps the fast path branch-free in the common case.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream. Children of the same parent with
  /// distinct tags are statistically independent and reproducible.
  Rng fork(std::uint64_t tag) const noexcept {
    std::uint64_t sm = state_[0] ^ rotl(state_[2], 13) ^ (tag * 0xD1342543DE82EF95ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace prord::util
