// Small string helpers used by the log parser and formatters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace prord::util {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Case-sensitive suffix test.
bool ends_with(std::string_view s, std::string_view suffix);

/// Parses a non-negative integer; returns false on any malformed input
/// (empty, non-digits, overflow).
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Lower-cases ASCII in place.
std::string to_lower(std::string_view s);

/// Returns the extension of a URL path (text after the final '.' in the
/// final path segment, lower-cased), or "" if none. Query strings are
/// stripped first.
std::string url_extension(std::string_view url);

/// Strips "?query" and "#fragment" from a URL path.
std::string_view url_path(std::string_view url);

/// Human-readable byte count ("12.3 KB", "4.0 MB").
std::string format_bytes(double bytes);

}  // namespace prord::util
