#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace prord::util {
namespace {

void escape_to(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void number_to(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void indent_to(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json_parse: " + what + " at offset " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Report files are ASCII; encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    if (pos == start) fail("expected number");
    const std::string token(text.substr(start, pos - start));
    try {
      return JsonValue(std::stod(token));
    } catch (const std::exception&) {
      fail("bad number '" + token + "'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }
};

}  // namespace

void JsonValue::dump_to(std::string& out, int indent) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: number_to(out, num_); return;
    case Type::kString: escape_to(out, str_); return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        indent_to(out, indent + 1);
        items_[i].dump_to(out, indent + 1);
        if (i + 1 < items_.size()) out.push_back(',');
        out.push_back('\n');
      }
      indent_to(out, indent);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent_to(out, indent + 1);
        escape_to(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent + 1);
        if (i + 1 < members_.size()) out.push_back(',');
        out.push_back('\n');
      }
      indent_to(out, indent);
      out.push_back('}');
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out.push_back('\n');
  return out;
}

JsonValue json_parse(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size())
    throw std::runtime_error("json_parse: trailing content at offset " +
                             std::to_string(p.pos));
  return v;
}

}  // namespace prord::util
