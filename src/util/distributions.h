// Statistical samplers used by the synthetic trace generators.
//
// Web workloads are classically modelled with a small set of heavy-tailed
// distributions (Barford & Crovella, SIGMETRICS'98):
//   - Zipf(-like) file popularity,
//   - Pareto think times and session tails,
//   - LogNormal file/body sizes,
//   - Exponential (Poisson process) session arrivals.
// Each sampler here is deterministic given the Rng it is handed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace prord::util {

/// Zipf distribution over ranks {0, ..., n-1}: P(rank k) ~ 1/(k+1)^alpha.
/// Sampling is O(log n) by binary search over the precomputed CDF; build is
/// O(n). Suitable for the file-popularity universes used here (<= ~1e6).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double alpha);

  /// Samples a rank in [0, size()).
  std::size_t operator()(Rng& rng) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double alpha() const noexcept { return alpha_; }

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double alpha_;
};

/// Bounded Pareto distribution on [lo, hi] with shape `alpha`.
/// Used for user think times (heavy tail, finite support).
class ParetoDistribution {
 public:
  ParetoDistribution(double alpha, double lo, double hi);

  double operator()(Rng& rng) const;

  double alpha() const noexcept { return alpha_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

 private:
  double alpha_, lo_, hi_;
  double lo_pow_, hi_pow_;  // lo^-alpha, hi^-alpha (cached)
};

/// LogNormal with given mean/sigma of the underlying normal.
/// `from_mean_cv` builds one from a target arithmetic mean and coefficient
/// of variation, which is how file-size models are usually specified.
class LogNormalDistribution {
 public:
  LogNormalDistribution(double mu, double sigma);
  static LogNormalDistribution from_mean_cv(double mean, double cv);

  double operator()(Rng& rng) const;

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  double mu_, sigma_;
};

/// Exponential with rate lambda (mean 1/lambda). Inter-arrival times of a
/// Poisson process.
class ExponentialDistribution {
 public:
  explicit ExponentialDistribution(double lambda);

  double operator()(Rng& rng) const;

  double lambda() const noexcept { return lambda_; }

 private:
  double lambda_;
};

/// Discrete distribution over {0..n-1} with arbitrary non-negative weights.
/// O(1) sampling via Walker's alias method; O(n) build.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(const std::vector<double>& weights);

  std::size_t operator()(Rng& rng) const;

  std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Geometric number of trials >= 1 with success probability p
/// (session-length style counts).
std::size_t sample_geometric(Rng& rng, double p);

}  // namespace prord::util
