#include "util/string_util.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace prord::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view url_path(std::string_view url) {
  const std::size_t q = url.find_first_of("?#");
  return q == std::string_view::npos ? url : url.substr(0, q);
}

std::string url_extension(std::string_view url) {
  const std::string_view path = url_path(url);
  const std::size_t slash = path.rfind('/');
  const std::string_view last =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const std::size_t dot = last.rfind('.');
  if (dot == std::string_view::npos || dot + 1 == last.size()) return "";
  return to_lower(last.substr(dot + 1));
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> kUnits{"B", "KB", "MB", "GB",
                                                     "TB"};
  std::size_t unit = 0;
  while (bytes >= 1024.0 && unit + 1 < kUnits.size()) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, kUnits[unit]);
  return buf;
}

}  // namespace prord::util
