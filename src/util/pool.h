// Fixed-size freelist pool for hot-path records.
//
// The sim allocates one event node per scheduled callback and one in-flight
// record per request attempt; at bench scale that is millions of identical
// small allocations. FixedPool hands them out from chunked slabs with a
// LIFO freelist: acquire/release are a pointer swap, reuse order is
// deterministic (last released, first reacquired), and slabs grow
// geometrically when the pool is exhausted. Not thread-safe — each
// simulation cell owns its pools, matching the one-sim-per-thread design
// of the parallel runner.
//
// Double release is detected eagerly and throws (the sanitizer job and
// tests/util/pool_test.cpp both lean on this). A process-global bypass
// switch routes acquire/release to plain new/delete so bench_perf can
// reproduce the pre-pool allocation profile in its baseline mode.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

namespace prord::util {

namespace detail {
inline std::atomic<bool> g_pool_bypass{false};
}  // namespace detail

/// Perf-baseline switch: make every pool fall through to new/delete.
/// Toggle only between runs, never while objects are live in a pool.
inline void set_pool_bypass(bool on) noexcept {
  detail::g_pool_bypass.store(on, std::memory_order_relaxed);
}
inline bool pool_bypass() noexcept {
  return detail::g_pool_bypass.load(std::memory_order_relaxed);
}

template <typename T>
class FixedPool {
 public:
  /// `honor_bypass` opts this pool into the global baseline switch. Pools
  /// whose slot memory must outlive released objects (the event queue
  /// peeks at freed nodes to reject stale cancel handles) pass false.
  explicit FixedPool(std::size_t first_chunk_capacity = 256,
                     bool honor_bypass = true)
      : first_chunk_capacity_(first_chunk_capacity ? first_chunk_capacity
                                                   : 1),
        honor_bypass_(honor_bypass) {}

  FixedPool(const FixedPool&) = delete;
  FixedPool& operator=(const FixedPool&) = delete;

  ~FixedPool() {
    // Destroy stragglers so a pool abandoned mid-run (exception unwind)
    // doesn't leak the objects' own resources. Bypass allocations are the
    // caller's to release before the pool dies.
    for (auto& chunk : chunks_) {
      for (std::size_t i = 0; i < chunk.count; ++i) {
        Slot& s = chunk.slots[i];
        if (s.live) reinterpret_cast<T*>(s.storage)->~T();
      }
    }
  }

  template <typename... Args>
  T* acquire(Args&&... args) {
    Slot* slot;
    if (honor_bypass_ && pool_bypass()) {
      slot = new Slot;
      slot->from_heap = true;
      ++heap_fallbacks_;
    } else {
      if (!free_head_) grow();
      slot = free_head_;
      free_head_ = slot->next_free;
      slot->from_heap = false;
    }
    T* obj = ::new (static_cast<void*>(slot->storage)) T(
        std::forward<Args>(args)...);
    slot->live = true;
    ++in_use_;
    ++total_acquires_;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return obj;
  }

  void release(T* obj) {
    if (!obj) return;
    Slot* slot = slot_of(obj);
    if (!slot->live)
      throw std::logic_error("FixedPool::release: double free");
    obj->~T();
    slot->live = false;
    --in_use_;
    if (slot->from_heap) {
      delete slot;
      return;
    }
    slot->next_free = free_head_;
    free_head_ = slot;
  }

  std::size_t in_use() const noexcept { return in_use_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }
  std::size_t high_water() const noexcept { return high_water_; }
  std::uint64_t total_acquires() const noexcept { return total_acquires_; }
  std::uint64_t heap_fallbacks() const noexcept { return heap_fallbacks_; }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    Slot* next_free = nullptr;
    bool live = false;
    bool from_heap = false;
  };

  struct Chunk {
    std::unique_ptr<Slot[]> slots;
    std::size_t count = 0;
  };

  static Slot* slot_of(T* obj) noexcept {
    // storage is the first member of the standard-layout Slot, so the
    // object pointer doubles as the slot pointer.
    return reinterpret_cast<Slot*>(reinterpret_cast<unsigned char*>(obj) -
                                   offsetof(Slot, storage));
  }

  void grow() {
    // Geometric growth: each new slab matches the current total capacity,
    // so N live objects cost O(log N) slab allocations overall.
    const std::size_t count =
        capacity_ ? capacity_ : first_chunk_capacity_;
    Chunk chunk;
    chunk.slots = std::make_unique<Slot[]>(count);
    chunk.count = count;
    // Thread slots onto the freelist in reverse so a fresh pool hands
    // them out in ascending address order — deterministic and
    // prefetch-friendly.
    for (std::size_t i = count; i-- > 0;) {
      chunk.slots[i].next_free = free_head_;
      free_head_ = &chunk.slots[i];
    }
    capacity_ += count;
    chunks_.push_back(std::move(chunk));
  }

  std::vector<Chunk> chunks_;
  Slot* free_head_ = nullptr;
  std::size_t first_chunk_capacity_;
  bool honor_bypass_ = true;
  std::size_t capacity_ = 0;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t total_acquires_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
};

}  // namespace prord::util
