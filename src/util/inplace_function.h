// Move-only callable with inline (small-buffer) storage.
//
// The simulator dispatches tens of millions of closures per bench run;
// std::function's 16-byte small-object buffer forces a heap allocation for
// nearly every model closure (they capture request records, routing state,
// completion chains). InplaceFunction stores callables up to InlineBytes
// in place and only falls back to the heap for oversized ones, which takes
// the event hot path from one malloc/free per event to zero.
//
// A process-global "legacy boxing" switch exists purely for A/B perf
// baselines (bench_perf): when enabled, any callable larger than
// std::function's historical 16-byte SSO window is heap-allocated, which
// reproduces the allocation profile of the std::function-based event loop
// this type replaced. It is not meant to be toggled mid-run.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace prord::util {

namespace detail {
inline std::atomic<bool> g_inplace_legacy_boxing{false};
/// std::function (libstdc++/libc++) keeps callables up to two words
/// inline; anything larger is heap-allocated. The legacy baseline mode
/// mimics exactly that threshold.
inline constexpr std::size_t kLegacySsoBytes = 16;
}  // namespace detail

/// Perf-baseline switch: reproduce std::function's allocation behaviour.
/// Toggle only while no simulation is in flight (bench_perf does this
/// between scenario runs).
inline void set_legacy_callable_boxing(bool on) noexcept {
  detail::g_inplace_legacy_boxing.store(on, std::memory_order_relaxed);
}
inline bool legacy_callable_boxing() noexcept {
  return detail::g_inplace_legacy_boxing.load(std::memory_order_relaxed);
}

template <typename Signature, std::size_t InlineBytes = 48>
class InplaceFunction;  // undefined; specialized below

template <typename R, typename... Args, std::size_t InlineBytes>
class InplaceFunction<R(Args...), InlineBytes> {
 public:
  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(runtime/explicit)
    emplace(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) const {
    if (!vt_) throw std::bad_function_call();
    return vt_->invoke(const_cast<void*>(static_cast<const void*>(buf_)),
                       std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// True when the wrapped callable lives on the heap (diagnostics).
  bool heap_allocated() const noexcept { return vt_ && vt_->heap; }

  static constexpr std::size_t inline_capacity() noexcept {
    return InlineBytes;
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
    bool heap;
  };

  template <typename F>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<F*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      ::new (dst) F(std::move(*static_cast<F*>(src)));
      static_cast<F*>(src)->~F();
    }
    static void destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy, false};
  };

  template <typename F>
  struct HeapOps {
    static R invoke(void* p, Args&&... args) {
      return (**static_cast<F**>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      *static_cast<F**>(dst) = *static_cast<F**>(src);
    }
    static void destroy(void* p) { delete *static_cast<F**>(p); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy, true};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    constexpr bool fits = sizeof(D) <= InlineBytes &&
                          alignof(D) <= alignof(std::max_align_t);
    const bool box = sizeof(D) > detail::kLegacySsoBytes &&
                     legacy_callable_boxing();
    if constexpr (fits) {
      if (!box) {
        ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
        vt_ = &InlineOps<D>::vtable;
        return;
      }
    }
    *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
    vt_ = &HeapOps<D>::vtable;
  }

  void move_from(InplaceFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_) vt_->relocate(buf_, other.buf_);
    other.vt_ = nullptr;
  }

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
};

}  // namespace prord::util
