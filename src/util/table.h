// ASCII table formatting for experiment output.
//
// Every bench binary prints paper-style result tables through this helper
// so that all harness output is uniformly parseable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace prord::util {

/// Renders a numeric series as a one-line Unicode sparkline
/// (▁▂▃▄▅▆▇█), scaled to [min, max] of the series. Empty input gives an
/// empty string; a constant series renders at the lowest level.
std::string sparkline(const std::vector<double>& values);

/// A simple right-padded ASCII table. Columns are sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return headers_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const {
    return rows_.at(r).at(c);
  }

  /// Renders with a rule under the header, e.g.
  ///   policy   throughput(req/s)
  ///   -------  -----------------
  ///   LARD     1234.5
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prord::util
