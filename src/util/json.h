// Minimal JSON document model: writer + strict parser.
//
// Supports exactly what the perf-report pipeline needs — the BENCH_*.json
// emitter (stable, ordered serialization) and the schema test that parses
// the emitted files and the checked-in docs/perf_schema.json. Objects keep
// insertion order so reports serialize reproducibly; numbers render as
// integers when integral (timestamps survive round-trips bit-exact).
// No external dependencies by design.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prord::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;                      // null
  JsonValue(std::nullptr_t) {}                // NOLINT(runtime/explicit)
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  JsonValue(double n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  JsonValue(std::int64_t n)  // NOLINT(runtime/explicit)
      : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  JsonValue(std::uint64_t n)  // NOLINT(runtime/explicit)
      : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  JsonValue(int n) : JsonValue(static_cast<std::int64_t>(n)) {}  // NOLINT
  JsonValue(std::string s)  // NOLINT(runtime/explicit)
      : type_(Type::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}  // NOLINT

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Array append.
  void push_back(JsonValue v) { items_.push_back(std::move(v)); }
  /// Object append (keys are kept in insertion order, duplicates allowed
  /// by the writer but never produced by the report emitter).
  void set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : members_)
      if (k == key) return &v;
    return nullptr;
  }

  /// Serializes with 2-space indentation and ordered members.
  std::string dump() const;

 private:
  void dump_to(std::string& out, int indent) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Strict parse (single document, whole input). Throws std::runtime_error
/// with an offset-tagged message on malformed input.
JsonValue json_parse(std::string_view text);

}  // namespace prord::util
