#include "util/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace prord::util {

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
    : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  if (alpha < 0) throw std::invalid_argument("ZipfDistribution: alpha < 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += std::pow(static_cast<double>(k + 1), -alpha);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against FP drift at the tail
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t rank) const {
  if (rank >= cdf_.size())
    throw std::out_of_range("ZipfDistribution::pmf: rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

ParetoDistribution::ParetoDistribution(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  if (alpha <= 0 || lo <= 0 || hi <= lo)
    throw std::invalid_argument("ParetoDistribution: need alpha>0, 0<lo<hi");
  lo_pow_ = std::pow(lo_, -alpha_);
  hi_pow_ = std::pow(hi_, -alpha_);
}

double ParetoDistribution::operator()(Rng& rng) const {
  // Inverse-CDF sampling of the bounded Pareto.
  const double u = rng.uniform();
  const double x = std::pow(lo_pow_ - u * (lo_pow_ - hi_pow_), -1.0 / alpha_);
  return std::clamp(x, lo_, hi_);
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  if (sigma < 0)
    throw std::invalid_argument("LogNormalDistribution: sigma < 0");
}

LogNormalDistribution LogNormalDistribution::from_mean_cv(double mean,
                                                          double cv) {
  if (mean <= 0 || cv < 0)
    throw std::invalid_argument("LogNormalDistribution: need mean>0, cv>=0");
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormalDistribution(mu, std::sqrt(sigma2));
}

double LogNormalDistribution::operator()(Rng& rng) const {
  // Box-Muller; one draw per call keeps the stream deterministic and simple.
  double u1 = rng.uniform();
  const double u2 = rng.uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  return std::exp(mu_ + sigma_ * z);
}

ExponentialDistribution::ExponentialDistribution(double lambda)
    : lambda_(lambda) {
  if (lambda <= 0)
    throw std::invalid_argument("ExponentialDistribution: lambda <= 0");
}

double ExponentialDistribution::operator()(Rng& rng) const {
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda_;
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0)
    throw std::invalid_argument("DiscreteDistribution: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0 || !std::isfinite(w))
      throw std::invalid_argument("DiscreteDistribution: bad weight");
    total += w;
  }
  if (total <= 0)
    throw std::invalid_argument("DiscreteDistribution: all-zero weights");

  // Walker's alias method.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // FP leftovers
}

std::size_t DiscreteDistribution::operator()(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.below(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

std::size_t sample_geometric(Rng& rng, double p) {
  if (p <= 0.0 || p > 1.0)
    throw std::invalid_argument("sample_geometric: p must be in (0,1]");
  if (p == 1.0) return 1;
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  const double k = std::ceil(std::log(u) / std::log(1.0 - p));
  return static_cast<std::size_t>(std::max(1.0, k));
}

}  // namespace prord::util
