#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace prord::util {

std::string sparkline(const std::vector<double>& values) {
  static constexpr const char* kLevels[] = {"▁", "▂", "▃",
                                            "▄", "▅", "▆",
                                            "▇", "█"};
  if (values.empty()) return {};
  double lo = values.front(), hi = values.front();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  std::string out;
  out.reserve(values.size() * 3);
  for (double v : values) {
    int level = 0;
    if (span > 0)
      level = static_cast<int>((v - lo) / span * 7.0 + 0.5);
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit(headers_);
  std::vector<std::string> rule(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule[c] = std::string(width[c], '-');
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

}  // namespace prord::util
