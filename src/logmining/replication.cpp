#include "logmining/replication.h"

#include <algorithm>
#include <stdexcept>

namespace prord::logmining {

std::uint32_t tier_replicas(ReplicaTier tier, std::uint32_t num_servers) {
  switch (tier) {
    case ReplicaTier::kAll:
      return num_servers;
    case ReplicaTier::kThreeQuarter:
      return std::max(1u, (num_servers * 3 + 3) / 4);
    case ReplicaTier::kHalf:
      return std::max(1u, (num_servers + 1) / 2);
    case ReplicaTier::kNoChange:
    case ReplicaTier::kNone:
      return 0;
  }
  return 0;
}

std::vector<ReplicaDirective> plan_replication(
    std::span<const RankEntry> rank_table, std::uint32_t num_servers,
    const ReplicationPlanOptions& options) {
  if (num_servers == 0)
    throw std::invalid_argument("plan_replication: num_servers == 0");
  std::vector<ReplicaDirective> plan;
  if (rank_table.empty()) return plan;

  // The table arrives sorted (Algorithm 3 step (i)); trust but verify in
  // debug builds only — a full scan per round would dominate the planner.
  const double top = rank_table.front().rank;
  if (top <= 0.0) return plan;
  const double t1 = top * options.t1_fraction_of_top;

  for (const auto& entry : rank_table) {
    if (entry.rank < options.min_rank) break;  // table is sorted descending
    ReplicaTier tier;
    if (entry.rank > 0.75 * t1)
      tier = ReplicaTier::kAll;
    else if (entry.rank > 0.5 * t1)
      tier = ReplicaTier::kThreeQuarter;
    else if (entry.rank > 0.25 * t1)
      tier = ReplicaTier::kHalf;
    else if (entry.rank > 0.125 * t1)
      tier = ReplicaTier::kNoChange;
    else
      tier = ReplicaTier::kNone;
    plan.push_back(ReplicaDirective{entry.file, tier,
                                    tier_replicas(tier, num_servers)});
    if (options.max_directives != 0 && plan.size() >= options.max_directives)
      break;
  }
  return plan;
}

}  // namespace prord::logmining
