#include "logmining/path_mining.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace prord::logmining {

PathMiner::PathMiner(std::size_t min_len, std::size_t max_len,
                     std::uint64_t min_count)
    : min_len_(min_len), max_len_(max_len), min_count_(min_count) {
  if (min_len < 2 || max_len < min_len || max_len > 16)
    throw std::invalid_argument("PathMiner: need 2 <= min_len <= max_len <= 16");
  if (min_count == 0)
    throw std::invalid_argument("PathMiner: min_count must be >= 1");
}

std::uint64_t PathMiner::key_of(std::span<const trace::FileId> pages) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (trace::FileId p : pages) {
    h ^= p;
    h *= 0x100000001B3ULL;
    h ^= h >> 29;
  }
  // Mix in the length so a prefix never collides with its extension.
  h ^= pages.size() * 0x9E3779B97F4A7C15ULL;
  return h;
}

void PathMiner::train(std::span<const Session> sessions) {
  // Count every contiguous window. Keys are hashes; the canonical page
  // sequence is kept beside the count for the survivors.
  struct Acc {
    std::vector<trace::FileId> pages;
    std::uint64_t count = 0;
  };
  std::unordered_map<std::uint64_t, Acc> counts;
  for (const auto& s : sessions) {
    for (std::size_t len = min_len_; len <= max_len_; ++len) {
      if (s.pages.size() < len) break;
      for (std::size_t i = 0; i + len <= s.pages.size(); ++i) {
        const auto window = std::span(s.pages).subspan(i, len);
        auto& acc = counts[key_of(window)];
        if (acc.count == 0) acc.pages.assign(window.begin(), window.end());
        ++acc.count;
      }
    }
  }

  fragments_.clear();
  index_.clear();
  for (auto& [key, acc] : counts) {
    if (acc.count < min_count_) continue;
    fragments_.push_back(PathFragment{std::move(acc.pages), acc.count});
  }
  std::sort(fragments_.begin(), fragments_.end(),
            [](const PathFragment& a, const PathFragment& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.pages.size() != b.pages.size())
                return a.pages.size() < b.pages.size();
              return a.pages < b.pages;
            });
  for (std::size_t i = 0; i < fragments_.size(); ++i)
    index_[key_of(fragments_[i].pages)] = i + 1;
}

std::vector<PathFragment> PathMiner::fragments_of_length(
    std::size_t len) const {
  std::vector<PathFragment> out;
  for (const auto& f : fragments_)
    if (f.pages.size() == len) out.push_back(f);
  return out;
}

std::vector<PathFragment> PathMiner::paths_to(trace::FileId target,
                                              std::size_t max_results) const {
  std::vector<PathFragment> out;
  for (const auto& f : fragments_) {
    if (f.pages.back() != target) continue;
    out.push_back(f);
    if (out.size() >= max_results) break;
  }
  return out;
}

std::uint64_t PathMiner::count_of(
    std::span<const trace::FileId> pages) const {
  const auto it = index_.find(key_of(pages));
  if (it == index_.end()) return 0;
  const auto& f = fragments_[it->second - 1];
  // Guard against hash collisions: verify the sequence.
  if (f.pages.size() != pages.size() ||
      !std::equal(f.pages.begin(), f.pages.end(), pages.begin()))
    return 0;
  return f.count;
}

}  // namespace prord::logmining
