// Website-reorganization suggestions from navigation mining.
//
// Srikant & Yang [6] ("Mining Web Logs to Improve Website Organization",
// discussed in Section 2.2.1): when users repeatedly reach a target page
// only through a detour — a multi-hop path whose endpoints are far more
// correlated than the links explain — the site is organized against its
// visitors, and a direct hyperlink (or a content move) is warranted.
//
// The analyzer consumes PathMiner output: for every frequent fragment
// A -> ... -> B of length >= 3 whose direct link A -> B is missing or
// rarely used, it emits a suggestion scored by how much traffic would be
// short-circuited.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "logmining/path_mining.h"

namespace prord::logmining {

struct LinkSuggestion {
  trace::FileId from = trace::kInvalidFile;
  trace::FileId to = trace::kInvalidFile;
  std::uint64_t detour_traversals = 0;  ///< users who took the long way
  std::uint64_t direct_traversals = 0;  ///< users who already had a shortcut
  std::size_t detour_length = 0;        ///< pages on the observed detour
  /// detour_traversals / (detour + direct): 1.0 means nobody goes direct.
  double benefit = 0.0;
};

struct ReorganizationOptions {
  std::size_t min_detour_length = 3;  ///< pages (i.e. >= 2 hops)
  std::uint64_t min_detour_traversals = 3;
  /// Suggest only when at most this share of travellers goes direct.
  double max_direct_share = 0.5;
  std::size_t max_suggestions = 32;
};

/// Analyzes mined fragments and returns link suggestions, highest benefit
/// (then highest traffic) first. `miner` must already be trained with
/// max_len >= options.min_detour_length.
std::vector<LinkSuggestion> suggest_links(
    const PathMiner& miner, const ReorganizationOptions& options = {});

}  // namespace prord::logmining
