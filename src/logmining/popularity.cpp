#include "logmining/popularity.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace prord::logmining {

PopularityTracker::PopularityTracker(sim::SimTime halflife)
    : halflife_(halflife) {
  if (halflife < 0)
    throw std::invalid_argument("PopularityTracker: negative halflife");
}

double PopularityTracker::decayed(const Entry& e, sim::SimTime now) const {
  if (halflife_ == 0 || now <= e.stamp) return e.value;
  const double dt = static_cast<double>(now - e.stamp);
  return e.value * std::exp2(-dt / static_cast<double>(halflife_));
}

void PopularityTracker::seed(std::span<const trace::Request> requests) {
  for (const auto& req : requests) entries_[req.file].value += 1.0;
}

void PopularityTracker::age(double keep_fraction) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0)
    throw std::invalid_argument("PopularityTracker: keep_fraction in (0, 1]");
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second.value *= keep_fraction;
    if (it->second.value < 1e-6)
      it = entries_.erase(it);
    else
      ++it;
  }
}

void PopularityTracker::record_hit(trace::FileId file, sim::SimTime now) {
  auto& e = entries_[file];
  e.value = decayed(e, now) + 1.0;
  e.stamp = std::max(e.stamp, now);
}

double PopularityTracker::rank(trace::FileId file, sim::SimTime now) const {
  const auto it = entries_.find(file);
  return it == entries_.end() ? 0.0 : decayed(it->second, now);
}

void PopularityTracker::save(std::ostream& out) const {
  out << "popularity " << halflife_ << ' ' << entries_.size() << '\n';
  std::map<trace::FileId, const Entry*> ordered;
  for (const auto& [file, e] : entries_) ordered.emplace(file, &e);
  // Decayed values round-trip bit-exactly as their IEEE-754 bit patterns.
  for (const auto& [file, e] : ordered)
    out << file << ' ' << std::bit_cast<std::uint64_t>(e->value) << ' '
        << e->stamp << '\n';
  out << "end\n";
}

bool PopularityTracker::load(std::istream& in) {
  std::string tag;
  sim::SimTime halflife = 0;
  std::size_t n = 0;
  if (!(in >> tag >> halflife >> n) || tag != "popularity" ||
      halflife != halflife_)
    return false;
  // Stage into a local table: every early return below must leave the
  // live counters untouched (the all-or-nothing contract in the header).
  std::unordered_map<trace::FileId, Entry> entries;
  entries.reserve(std::min<std::size_t>(n, 1u << 20));  // corrupt-count guard
  for (std::size_t i = 0; i < n; ++i) {
    trace::FileId file = 0;
    std::uint64_t value_bits = 0;
    Entry e;
    if (!(in >> file >> value_bits >> e.stamp)) return false;
    e.value = std::bit_cast<double>(value_bits);
    entries.emplace(file, e);
  }
  if (!(in >> tag) || tag != "end") return false;
  entries_ = std::move(entries);
  return true;
}

std::vector<RankEntry> PopularityTracker::rank_table(sim::SimTime now) const {
  std::vector<RankEntry> table;
  table.reserve(entries_.size());
  for (const auto& [file, e] : entries_)
    table.push_back(RankEntry{file, decayed(e, now)});
  std::sort(table.begin(), table.end(),
            [](const RankEntry& a, const RankEntry& b) {
              return a.rank != b.rank ? a.rank > b.rank : a.file < b.file;
            });
  return table;
}

void PopularityTracker::top_rank_table(sim::SimTime now, std::size_t k,
                                       std::vector<RankEntry>& out) const {
  out.clear();
  if (k == 0) return;
  if (legacy_rank_selection()) {
    // Reference path: reproduce the original per-round cost — a fresh
    // full-table rebuild and a full sort — then keep the prefix.
    auto table = rank_table(now);
    if (table.size() > k) table.resize(k);
    out = std::move(table);
    return;
  }

  const auto before = [](const RankEntry& a, const RankEntry& b) {
    return a.rank != b.rank ? a.rank > b.rank : a.file < b.file;
  };

  // Tournament selection into a 2k-bounded buffer. Once k candidates have
  // been ranked, `bar` holds the current k-th best entry; anything ordered
  // after it can never make the prefix, and anything whose *stored* value
  // is below bar.rank is ordered after it without even computing the
  // decayed rank (decay is non-increasing, so decayed <= value).
  RankEntry bar;
  bool have_bar = false;
  const std::size_t cap = k > (SIZE_MAX / 2) ? SIZE_MAX : 2 * k;
  const auto compact = [&] {
    std::nth_element(out.begin(), out.begin() + (k - 1), out.end(), before);
    bar = out[k - 1];
    have_bar = true;
    out.resize(k);
  };
  for (const auto& [file, e] : entries_) {
    if (have_bar && e.value < bar.rank) continue;
    const RankEntry cand{file, decayed(e, now)};
    if (have_bar && before(bar, cand)) continue;
    out.push_back(cand);
    if (out.size() >= cap && out.size() > k) compact();
  }
  if (out.size() > k) compact();
  std::sort(out.begin(), out.end(), before);
}

}  // namespace prord::logmining
