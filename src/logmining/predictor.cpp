#include "logmining/predictor.h"

#include <algorithm>
#include <functional>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace prord::logmining {
namespace {

/// Orders predictions for deterministic top-k: confidence desc, then page
/// id asc (ties must not depend on hash iteration order).
bool better(const Prediction& a, const Prediction& b) {
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  return a.page < b.page;
}

}  // namespace

// ---------------------------------------------------------------------------
// MarkovPredictor

MarkovPredictor::MarkovPredictor(unsigned order) : order_(order) {
  if (order == 0 || order > 8)
    throw std::invalid_argument("MarkovPredictor: order must be in [1,8]");
  tables_.resize(order);
}

std::uint64_t MarkovPredictor::context_key(
    std::span<const trace::FileId> ctx) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (trace::FileId f : ctx) {
    h ^= f + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
  }
  return h;
}

void MarkovPredictor::count(std::span<const trace::FileId> ctx,
                            trace::FileId next) {
  auto& stats = tables_[ctx.size() - 1][context_key(ctx)];
  ++stats.total;
  ++stats.next[next];
}

void MarkovPredictor::observe(std::span<const trace::FileId> pages) {
  for (std::size_t i = 1; i < pages.size(); ++i) {
    const std::size_t max_ctx = std::min<std::size_t>(order_, i);
    for (std::size_t len = 1; len <= max_ctx; ++len)
      count(pages.subspan(i - len, len), pages[i]);
  }
}

void MarkovPredictor::observe_transition(
    std::span<const trace::FileId> context, trace::FileId page) {
  const std::size_t max_ctx = std::min<std::size_t>(order_, context.size());
  for (std::size_t len = 1; len <= max_ctx; ++len)
    count(context.subspan(context.size() - len, len), page);
}

std::optional<Prediction> MarkovPredictor::predict(
    std::span<const trace::FileId> context, double min_confidence) const {
  const auto all = predict_all(context, 1);
  if (all.empty() || all.front().confidence < min_confidence)
    return std::nullopt;
  return all.front();
}

std::vector<Prediction> MarkovPredictor::predict_all(
    std::span<const trace::FileId> context, std::size_t k) const {
  // Longest-context-first back-off: the most specific context with data
  // wins outright (standard PPM behaviour).
  const std::size_t max_ctx = std::min<std::size_t>(order_, context.size());
  for (std::size_t len = max_ctx; len >= 1; --len) {
    const auto ctx = context.subspan(context.size() - len, len);
    const auto& table = tables_[len - 1];
    const auto it = table.find(context_key(ctx));
    if (it == table.end() || it->second.total == 0) continue;
    std::vector<Prediction> preds;
    preds.reserve(it->second.next.size());
    for (const auto& [page, cnt] : it->second.next)
      preds.push_back(Prediction{
          page,
          static_cast<double>(cnt) / static_cast<double>(it->second.total),
          static_cast<unsigned>(len)});
    std::sort(preds.begin(), preds.end(), better);
    if (preds.size() > k) preds.resize(k);
    return preds;
  }
  return {};
}

std::size_t MarkovPredictor::num_entries() const {
  std::size_t n = 0;
  for (const auto& table : tables_)
    for (const auto& [key, stats] : table) n += stats.next.size();
  return n;
}

void MarkovPredictor::save(std::ostream& out) const {
  out << "markov " << order_ << '\n';
  for (std::size_t level = 0; level < tables_.size(); ++level) {
    // Ordered copy for deterministic output.
    std::map<std::uint64_t, const ContextStats*> ordered;
    for (const auto& [key, stats] : tables_[level])
      ordered.emplace(key, &stats);
    out << "level " << level << ' ' << ordered.size() << '\n';
    for (const auto& [key, stats] : ordered) {
      std::map<trace::FileId, std::uint64_t> next(stats->next.begin(),
                                                  stats->next.end());
      out << key << ' ' << stats->total << ' ' << next.size();
      for (const auto& [page, cnt] : next) out << ' ' << page << ' ' << cnt;
      out << '\n';
    }
  }
  out << "end\n";
}

bool MarkovPredictor::load(std::istream& in) {
  std::string tag;
  unsigned order = 0;
  if (!(in >> tag >> order) || tag != "markov" || order != order_)
    return false;
  std::vector<std::unordered_map<std::uint64_t, ContextStats>> tables(order_);
  for (unsigned level = 0; level < order_; ++level) {
    std::size_t level_idx = 0, contexts = 0;
    if (!(in >> tag >> level_idx >> contexts) || tag != "level" ||
        level_idx != level)
      return false;
    for (std::size_t c = 0; c < contexts; ++c) {
      std::uint64_t key = 0, total = 0;
      std::size_t n = 0;
      if (!(in >> key >> total >> n)) return false;
      ContextStats stats;
      stats.total = total;
      for (std::size_t i = 0; i < n; ++i) {
        trace::FileId page = 0;
        std::uint64_t cnt = 0;
        if (!(in >> page >> cnt)) return false;
        stats.next.emplace(page, cnt);
      }
      tables[level].emplace(key, std::move(stats));
    }
  }
  if (!(in >> tag) || tag != "end") return false;
  tables_ = std::move(tables);
  return true;
}

void MarkovPredictor::age(double keep_fraction, std::uint64_t min_count) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0)
    throw std::invalid_argument("age: keep_fraction in (0,1]");
  for (auto& table : tables_) {
    for (auto it = table.begin(); it != table.end();) {
      auto& stats = it->second;
      stats.total = 0;
      for (auto nit = stats.next.begin(); nit != stats.next.end();) {
        nit->second = std::max(
            static_cast<std::uint64_t>(static_cast<double>(nit->second) *
                                       keep_fraction),
            min_count);
        if (nit->second == 0) {
          nit = stats.next.erase(nit);
        } else {
          stats.total += nit->second;
          ++nit;
        }
      }
      it = stats.next.empty() ? table.erase(it) : std::next(it);
    }
  }
}

// ---------------------------------------------------------------------------
// DependencyGraphPredictor

DependencyGraphPredictor::DependencyGraphPredictor(unsigned lookahead_window)
    : window_(lookahead_window) {
  if (lookahead_window == 0)
    throw std::invalid_argument("DependencyGraphPredictor: window == 0");
}

void DependencyGraphPredictor::observe(std::span<const trace::FileId> pages) {
  for (std::size_t i = 0; i < pages.size(); ++i) {
    Node& node = nodes_[pages[i]];
    ++node.occurrences;
    const std::size_t end = std::min(pages.size(), i + 1 + window_);
    for (std::size_t j = i + 1; j < end; ++j) {
      if (pages[j] == pages[i]) continue;
      ++node.arcs[pages[j]];
    }
  }
}

void DependencyGraphPredictor::observe_transition(
    std::span<const trace::FileId> context, trace::FileId page) {
  // Online form: credit the last `window_` context pages with an arc.
  const std::size_t n =
      std::min<std::size_t>(window_, context.size());
  for (std::size_t i = 0; i < n; ++i) {
    const trace::FileId from = context[context.size() - 1 - i];
    if (from == page) continue;
    ++nodes_[from].arcs[page];
  }
  if (!context.empty()) ++nodes_[context.back()].occurrences;
}

std::optional<Prediction> DependencyGraphPredictor::predict(
    std::span<const trace::FileId> context, double min_confidence) const {
  const auto all = predict_all(context, 1);
  if (all.empty() || all.front().confidence < min_confidence)
    return std::nullopt;
  return all.front();
}

std::vector<Prediction> DependencyGraphPredictor::predict_all(
    std::span<const trace::FileId> context, std::size_t k) const {
  if (context.empty()) return {};
  const auto it = nodes_.find(context.back());
  if (it == nodes_.end() || it->second.occurrences == 0) return {};
  std::vector<Prediction> preds;
  preds.reserve(it->second.arcs.size());
  for (const auto& [page, cnt] : it->second.arcs)
    preds.push_back(Prediction{
        page,
        std::min(1.0, static_cast<double>(cnt) /
                          static_cast<double>(it->second.occurrences)),
        1});
  std::sort(preds.begin(), preds.end(), better);
  if (preds.size() > k) preds.resize(k);
  return preds;
}

std::size_t DependencyGraphPredictor::num_entries() const {
  std::size_t n = 0;
  for (const auto& [page, node] : nodes_) n += node.arcs.size();
  return n;
}

void DependencyGraphPredictor::save(std::ostream& out) const {
  out << "depgraph " << window_ << ' ' << nodes_.size() << '\n';
  std::map<trace::FileId, const Node*> ordered;
  for (const auto& [page, node] : nodes_) ordered.emplace(page, &node);
  for (const auto& [page, node] : ordered) {
    std::map<trace::FileId, std::uint64_t> arcs(node->arcs.begin(),
                                                node->arcs.end());
    out << page << ' ' << node->occurrences << ' ' << arcs.size();
    for (const auto& [to, cnt] : arcs) out << ' ' << to << ' ' << cnt;
    out << '\n';
  }
  out << "end\n";
}

bool DependencyGraphPredictor::load(std::istream& in) {
  std::string tag;
  unsigned window = 0;
  std::size_t n = 0;
  if (!(in >> tag >> window >> n) || tag != "depgraph" || window != window_)
    return false;
  std::unordered_map<trace::FileId, Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    trace::FileId page = 0;
    Node node;
    std::size_t arcs = 0;
    if (!(in >> page >> node.occurrences >> arcs)) return false;
    for (std::size_t a = 0; a < arcs; ++a) {
      trace::FileId to = 0;
      std::uint64_t cnt = 0;
      if (!(in >> to >> cnt)) return false;
      node.arcs.emplace(to, cnt);
    }
    nodes.emplace(page, std::move(node));
  }
  if (!(in >> tag) || tag != "end") return false;
  nodes_ = std::move(nodes);
  return true;
}

void DependencyGraphPredictor::age(double keep_fraction,
                                   std::uint64_t min_count) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0)
    throw std::invalid_argument("age: keep_fraction in (0,1]");
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    auto& node = it->second;
    node.occurrences = std::max(
        static_cast<std::uint64_t>(static_cast<double>(node.occurrences) *
                                   keep_fraction),
        min_count);
    for (auto ait = node.arcs.begin(); ait != node.arcs.end();) {
      ait->second = std::max(
          static_cast<std::uint64_t>(static_cast<double>(ait->second) *
                                     keep_fraction),
          min_count);
      ait = ait->second == 0 ? node.arcs.erase(ait) : std::next(ait);
    }
    it = (node.occurrences == 0 && node.arcs.empty()) ? nodes_.erase(it)
                                                      : std::next(it);
  }
}

// ---------------------------------------------------------------------------
// CandidatePathPredictor

CandidatePathPredictor::CandidatePathPredictor(unsigned order)
    : order_(order), counts_(order == 0 ? 1 : order) {
  if (order == 0 || order > 8)
    throw std::invalid_argument("CandidatePathPredictor: order in [1,8]");
}

void CandidatePathPredictor::add_link(trace::FileId from, trace::FileId to) {
  if (from == to) return;
  auto& out = links_[from];
  if (std::find(out.begin(), out.end(), to) == out.end()) out.push_back(to);
}

void CandidatePathPredictor::observe(std::span<const trace::FileId> pages) {
  for (std::size_t i = 1; i < pages.size(); ++i)
    add_link(pages[i - 1], pages[i]);
  counts_.observe(pages);
}

void CandidatePathPredictor::observe_transition(
    std::span<const trace::FileId> context, trace::FileId page) {
  if (!context.empty()) add_link(context.back(), page);
  counts_.observe_transition(context, page);
}

std::optional<Prediction> CandidatePathPredictor::predict(
    std::span<const trace::FileId> context, double min_confidence) const {
  const auto all = predict_all(context, 1);
  if (all.empty() || all.front().confidence < min_confidence)
    return std::nullopt;
  return all.front();
}

std::vector<Prediction> CandidatePathPredictor::predict_all(
    std::span<const trace::FileId> context, std::size_t k) const {
  if (context.empty()) return {};
  // Candidates are restricted to pages directly linked from the current
  // page — Algorithm 1's memory-bounding rule.
  const auto lit = links_.find(context.back());
  if (lit == links_.end()) return {};
  auto preds = counts_.predict_all(context, k + lit->second.size());
  std::erase_if(preds, [&](const Prediction& p) {
    return std::find(lit->second.begin(), lit->second.end(), p.page) ==
           lit->second.end();
  });
  if (preds.size() > k) preds.resize(k);
  return preds;
}

std::size_t CandidatePathPredictor::num_entries() const {
  std::size_t n = 0;
  for (const auto& [page, out] : links_) n += out.size();
  return n + counts_.num_entries();
}

void CandidatePathPredictor::save(std::ostream& out) const {
  out << "candidatepath " << order_ << ' ' << links_.size() << '\n';
  std::map<trace::FileId, const std::vector<trace::FileId>*> ordered;
  for (const auto& [from, to] : links_) ordered.emplace(from, &to);
  for (const auto& [from, to] : ordered) {
    out << from << ' ' << to->size();
    for (trace::FileId t : *to) out << ' ' << t;
    out << '\n';
  }
  counts_.save(out);
}

bool CandidatePathPredictor::load(std::istream& in) {
  std::string tag;
  unsigned order = 0;
  std::size_t n = 0;
  if (!(in >> tag >> order >> n) || tag != "candidatepath" || order != order_)
    return false;
  std::unordered_map<trace::FileId, std::vector<trace::FileId>> links;
  for (std::size_t i = 0; i < n; ++i) {
    trace::FileId from = 0;
    std::size_t outdeg = 0;
    if (!(in >> from >> outdeg)) return false;
    std::vector<trace::FileId> to(outdeg);
    for (auto& t : to)
      if (!(in >> t)) return false;
    links.emplace(from, std::move(to));
  }
  if (!counts_.load(in)) return false;
  links_ = std::move(links);
  return true;
}

void CandidatePathPredictor::age(double keep_fraction,
                                 std::uint64_t min_count) {
  // Link structure is cheap and stable; only the hit counters age.
  counts_.age(keep_fraction, min_count);
}

std::vector<std::vector<trace::FileId>> CandidatePathPredictor::candidate_paths(
    trace::FileId page, std::size_t max_paths) const {
  // Algorithm 1 (make_candidate_path): depth-bounded DFS along links.
  std::vector<std::vector<trace::FileId>> out;
  std::vector<trace::FileId> current;
  std::function<void(trace::FileId, unsigned)> dfs =
      [&](trace::FileId at, unsigned depth) {
        if (out.size() >= max_paths) return;
        current.push_back(at);
        if (depth == order_) {
          out.push_back(current);
        } else {
          const auto it = links_.find(at);
          if (it == links_.end() || it->second.empty()) {
            out.push_back(current);
          } else {
            for (trace::FileId next : it->second) {
              if (std::find(current.begin(), current.end(), next) !=
                  current.end())
                continue;  // avoid cycles
              dfs(next, depth + 1);
              if (out.size() >= max_paths) break;
            }
          }
        }
        current.pop_back();
      };
  dfs(page, 0);
  return out;
}

}  // namespace prord::logmining
