// Session reconstruction from access logs.
//
// Mining operates on *navigation sessions*: the ordered main-page views of
// one user visit. Embedded-object requests are stripped (they are fetched
// by the browser, not navigated to) and a client's stream is split whenever
// it pauses longer than an inactivity timeout — the standard 30-minute
// heuristic from the web-usage-mining literature [22].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/workload.h"

namespace prord::logmining {

struct Session {
  std::uint32_t client = 0;
  sim::SimTime start = 0;
  std::vector<trace::FileId> pages;  ///< main-page views, in order
};

struct SessionOptions {
  sim::SimTime inactivity_timeout = sim::sec(30.0 * 60);
  std::size_t min_pages = 1;  ///< drop shorter sessions
};

/// Splits a time-sorted request stream into navigation sessions.
std::vector<Session> build_sessions(std::span<const trace::Request> requests,
                                    const SessionOptions& options = {});

}  // namespace prord::logmining
