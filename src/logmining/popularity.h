// Popularity ranking (Section 3.2).
//
// The paper uses a two-fold system: offline analysis of historical logs
// plus dynamic online tracking of page hits. We implement that as a decayed
// hit counter: offline counts seed the table, online hits add with
// exponential decay so "the recent history" (Algorithm 3) dominates.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "simcore/sim_time.h"
#include "trace/workload.h"

namespace prord::logmining {

struct RankEntry {
  trace::FileId file = trace::kInvalidFile;
  double rank = 0.0;  ///< decayed hit count
};

namespace detail {
inline std::atomic<bool> g_legacy_rank_selection{false};
}  // namespace detail

/// Perf-baseline switch (see docs/PERF.md): when true, top_rank_table
/// routes through the legacy full-table rebuild + full sort that the
/// replication round originally paid every interval. Toggle only between
/// runs; the selected prefix is byte-identical either way.
inline void set_legacy_rank_selection(bool on) noexcept {
  detail::g_legacy_rank_selection.store(on, std::memory_order_relaxed);
}
inline bool legacy_rank_selection() noexcept {
  return detail::g_legacy_rank_selection.load(std::memory_order_relaxed);
}

class PopularityTracker {
 public:
  /// `halflife` controls decay of online hits; 0 disables decay (pure
  /// cumulative counting, which is what the offline pass uses).
  explicit PopularityTracker(sim::SimTime halflife = sim::sec(600.0));

  /// Offline seeding from a historical request stream.
  void seed(std::span<const trace::Request> requests);

  /// Online hit at simulated time `now`.
  void record_hit(trace::FileId file, sim::SimTime now);

  /// Current decayed rank of a file at time `now`.
  double rank(trace::FileId file, sim::SimTime now) const;

  /// Rank table sorted by rank descending (Algorithm 3 step (i)).
  std::vector<RankEntry> rank_table(sim::SimTime now) const;

  /// Fills `out` with the first `k` rows of rank_table(now) — byte-for-byte
  /// the same prefix, selected without sorting the whole table. The
  /// comparator (rank descending, file ascending) is a total order, so the
  /// top-k set and its ordering are unique; and because decay never grows a
  /// counter (decayed(e, now) <= e.value always), entries whose stored
  /// value is already below the running k-th best rank are skipped without
  /// paying the per-entry exp2. `out` is cleared first; callers reuse it
  /// across planning rounds to keep the hot path allocation-free. Honors
  /// set_legacy_rank_selection for perf-baseline runs.
  void top_rank_table(sim::SimTime now, std::size_t k,
                      std::vector<RankEntry>& out) const;

  std::size_t num_files() const noexcept { return entries_.size(); }

  /// Multiplies every counter by `keep_fraction` in (0, 1] and drops
  /// entries whose value becomes negligible; `rank`'s own timestamp
  /// decay is unaffected. For callers that snapshot a tracker across
  /// model generations and want bulk forgetting without a timestamp.
  void age(double keep_fraction);

  /// Serializes the decayed counters (values + timestamps).
  void save(std::ostream& out) const;

  /// Restores counters saved with the same halflife configuration.
  /// All-or-nothing: the stream is parsed into a staging table and only
  /// swapped in when it is complete and well-formed, so a false return
  /// (malformed input or halflife mismatch) leaves the tracker exactly as
  /// it was.
  bool load(std::istream& in);

 private:
  struct Entry {
    double value = 0.0;
    sim::SimTime stamp = 0;
  };
  double decayed(const Entry& e, sim::SimTime now) const;

  sim::SimTime halflife_;
  std::unordered_map<trace::FileId, Entry> entries_;
};

}  // namespace prord::logmining
