#include "logmining/session.h"

#include <algorithm>
#include <unordered_map>

namespace prord::logmining {

std::vector<Session> build_sessions(std::span<const trace::Request> requests,
                                    const SessionOptions& options) {
  std::vector<Session> done;
  struct Open {
    Session session;
    sim::SimTime last = 0;
  };
  std::unordered_map<std::uint32_t, Open> open;

  auto flush = [&](Open& o) {
    if (o.session.pages.size() >= options.min_pages)
      done.push_back(std::move(o.session));
    o.session = Session{};
  };

  for (const auto& req : requests) {
    if (req.is_embedded) continue;
    auto& o = open[req.client];
    if (!o.session.pages.empty() &&
        req.at - o.last > options.inactivity_timeout) {
      flush(o);
    }
    if (o.session.pages.empty()) {
      o.session.client = req.client;
      o.session.start = req.at;
    }
    o.session.pages.push_back(req.file);
    o.last = req.at;
  }
  for (auto& [client, o] : open) flush(o);

  // Deterministic order: by start time, then client.
  std::sort(done.begin(), done.end(), [](const Session& a, const Session& b) {
    return a.start != b.start ? a.start < b.start : a.client < b.client;
  });
  return done;
}

}  // namespace prord::logmining
