#include "logmining/association_rules.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace prord::logmining {
namespace {

using ItemSet = std::vector<trace::FileId>;  // sorted, unique

bool contains_sorted(const ItemSet& haystack, const ItemSet& needle) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

}  // namespace

AssociationRuleMiner::AssociationRuleMiner(AprioriOptions options)
    : options_(options) {
  if (options.min_support <= 0.0 || options.min_support > 1.0)
    throw std::invalid_argument("Apriori: min_support in (0,1]");
  if (options.min_confidence <= 0.0 || options.min_confidence > 1.0)
    throw std::invalid_argument("Apriori: min_confidence in (0,1]");
  if (options.max_itemset < 2)
    throw std::invalid_argument("Apriori: max_itemset >= 2");
}

void AssociationRuleMiner::train(std::span<const Session> sessions) {
  rules_.clear();
  level_sizes_.clear();
  if (sessions.empty()) return;

  // Transactions: unique sorted page sets.
  std::vector<ItemSet> txns;
  txns.reserve(sessions.size());
  for (const auto& s : sessions) {
    ItemSet t(s.pages.begin(), s.pages.end());
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    if (!t.empty()) txns.push_back(std::move(t));
  }
  const double n = static_cast<double>(txns.size());
  const auto min_count =
      static_cast<std::uint64_t>(std::max(1.0, options_.min_support * n));

  // Level 1.
  std::map<ItemSet, std::uint64_t> freq;  // frequent itemsets w/ counts
  {
    std::map<trace::FileId, std::uint64_t> c1;
    for (const auto& t : txns)
      for (trace::FileId f : t) ++c1[f];
    for (const auto& [f, c] : c1)
      if (c >= min_count) freq[{f}] = c;
  }
  std::vector<ItemSet> level;
  for (const auto& [is, c] : freq) level.push_back(is);
  level_sizes_.push_back(level.size());

  // Level-wise growth (classic Apriori join + prune, counted by scan).
  for (std::size_t k = 2; k <= options_.max_itemset && level.size() > 1; ++k) {
    std::set<ItemSet> candidates;
    for (std::size_t i = 0; i < level.size(); ++i)
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        const ItemSet &a = level[i], &b = level[j];
        // Join when the first k-2 items agree.
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1))
          continue;
        ItemSet cand(a);
        cand.push_back(b.back());
        std::sort(cand.begin(), cand.end());
        candidates.insert(std::move(cand));
      }
    std::map<ItemSet, std::uint64_t> counts;
    for (const auto& t : txns)
      for (const auto& cand : candidates)
        if (contains_sorted(t, cand)) ++counts[cand];
    level.clear();
    for (const auto& [cand, c] : counts)
      if (c >= min_count) {
        freq[cand] = c;
        level.push_back(cand);
      }
    level_sizes_.push_back(level.size());
    if (level.empty()) break;
  }

  // Rules with single-item consequents: X -> y for each y in S, X = S\{y}.
  for (const auto& [itemset, count] : freq) {
    if (itemset.size() < 2) continue;
    for (std::size_t drop = 0; drop < itemset.size(); ++drop) {
      ItemSet antecedent;
      antecedent.reserve(itemset.size() - 1);
      for (std::size_t i = 0; i < itemset.size(); ++i)
        if (i != drop) antecedent.push_back(itemset[i]);
      const auto ait = freq.find(antecedent);
      if (ait == freq.end()) continue;
      const double conf =
          static_cast<double>(count) / static_cast<double>(ait->second);
      if (conf < options_.min_confidence) continue;
      AssociationRule rule;
      rule.antecedent = antecedent;
      rule.consequent = itemset[drop];
      rule.support = static_cast<double>(count) / n;
      rule.confidence = conf;
      rules_.push_back(std::move(rule));
    }
  }
  // Deterministic, most-confident-first ordering.
  std::sort(rules_.begin(), rules_.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence)
                return a.confidence > b.confidence;
              if (a.support != b.support) return a.support > b.support;
              return a.consequent < b.consequent;
            });
}

std::optional<Prediction> AssociationRuleMiner::predict(
    std::span<const trace::FileId> context, double min_confidence) const {
  ItemSet ctx(context.begin(), context.end());
  std::sort(ctx.begin(), ctx.end());
  ctx.erase(std::unique(ctx.begin(), ctx.end()), ctx.end());
  for (const auto& rule : rules_) {  // sorted most-confident first
    if (rule.confidence < min_confidence) break;
    if (!contains_sorted(ctx, rule.antecedent)) continue;
    if (std::binary_search(ctx.begin(), ctx.end(), rule.consequent))
      continue;  // already visited
    return Prediction{rule.consequent, rule.confidence,
                      static_cast<unsigned>(rule.antecedent.size())};
  }
  return std::nullopt;
}

}  // namespace prord::logmining
