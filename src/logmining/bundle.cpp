#include "logmining/bundle.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace prord::logmining {

BundleMiner::BundleMiner(double min_cooccurrence)
    : min_cooccurrence_(min_cooccurrence) {
  if (min_cooccurrence <= 0.0 || min_cooccurrence > 1.0)
    throw std::invalid_argument("BundleMiner: min_cooccurrence in (0,1]");
}

void BundleMiner::observe(std::span<const trace::Request> requests) {
  for (const auto& req : requests) {
    if (req.is_embedded) {
      if (req.parent_page != trace::kInvalidFile)
        ++counts_[req.parent_page].objects[req.file];
    } else {
      ++counts_[req.file].views;
    }
  }
}

void BundleMiner::finalize() {
  bundles_.clear();
  for (const auto& [page, pc] : counts_) {
    if (pc.views == 0) continue;
    std::vector<trace::FileId> members;
    for (const auto& [obj, cnt] : pc.objects) {
      const double frac =
          static_cast<double>(cnt) / static_cast<double>(pc.views);
      if (frac >= min_cooccurrence_) members.push_back(obj);
    }
    if (members.empty()) continue;
    std::sort(members.begin(), members.end());
    bundles_.emplace(page, std::move(members));
  }
}

std::span<const trace::FileId> BundleMiner::bundle_of(
    trace::FileId page) const {
  const auto it = bundles_.find(page);
  if (it == bundles_.end()) return {};
  return it->second;
}

bool BundleMiner::in_bundle(trace::FileId page, trace::FileId object) const {
  const auto members = bundle_of(page);
  return std::binary_search(members.begin(), members.end(), object);
}

std::uint64_t BundleMiner::bundle_bytes(trace::FileId page,
                                        const trace::FileTable& files) const {
  std::uint64_t total = 0;
  for (trace::FileId f : bundle_of(page)) total += files.size_bytes(f);
  return total;
}

void BundleMiner::save(std::ostream& out) const {
  out << "bundles " << counts_.size() << '\n';
  std::map<trace::FileId, const PageCounts*> ordered;
  for (const auto& [page, pc] : counts_) ordered.emplace(page, &pc);
  for (const auto& [page, pc] : ordered) {
    std::map<trace::FileId, std::uint64_t> objects(pc->objects.begin(),
                                                   pc->objects.end());
    out << page << ' ' << pc->views << ' ' << objects.size();
    for (const auto& [obj, cnt] : objects) out << ' ' << obj << ' ' << cnt;
    out << '\n';
  }
  out << "end\n";
}

bool BundleMiner::load(std::istream& in) {
  std::string tag;
  std::size_t n = 0;
  if (!(in >> tag >> n) || tag != "bundles") return false;
  std::unordered_map<trace::FileId, PageCounts> counts;
  for (std::size_t i = 0; i < n; ++i) {
    trace::FileId page = 0;
    PageCounts pc;
    std::size_t objects = 0;
    if (!(in >> page >> pc.views >> objects)) return false;
    for (std::size_t o = 0; o < objects; ++o) {
      trace::FileId obj = 0;
      std::uint64_t cnt = 0;
      if (!(in >> obj >> cnt)) return false;
      pc.objects.emplace(obj, cnt);
    }
    counts.emplace(page, std::move(pc));
  }
  if (!(in >> tag) || tag != "end") return false;
  counts_ = std::move(counts);
  finalize();
  return true;
}

}  // namespace prord::logmining
