#include "logmining/reorganization.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace prord::logmining {

std::vector<LinkSuggestion> suggest_links(
    const PathMiner& miner, const ReorganizationOptions& options) {
  if (options.min_detour_length < 3)
    throw std::invalid_argument(
        "suggest_links: a detour needs at least 3 pages");

  // Aggregate detour traffic per (from, to) endpoint pair.
  struct Acc {
    std::uint64_t detour = 0;
    std::size_t shortest = 0;
  };
  std::map<std::pair<trace::FileId, trace::FileId>, Acc> pairs;
  for (const auto& f : miner.fragments()) {
    if (f.pages.size() < options.min_detour_length) continue;
    const trace::FileId from = f.pages.front();
    const trace::FileId to = f.pages.back();
    if (from == to) continue;
    auto& acc = pairs[{from, to}];
    acc.detour += f.count;
    acc.shortest = acc.shortest == 0 ? f.pages.size()
                                     : std::min(acc.shortest, f.pages.size());
  }

  std::vector<LinkSuggestion> out;
  for (const auto& [pair, acc] : pairs) {
    if (acc.detour < options.min_detour_traversals) continue;
    const std::uint64_t direct =
        miner.count_of(std::vector<trace::FileId>{pair.first, pair.second});
    const double total = static_cast<double>(acc.detour + direct);
    const double direct_share = static_cast<double>(direct) / total;
    if (direct_share > options.max_direct_share) continue;
    LinkSuggestion s;
    s.from = pair.first;
    s.to = pair.second;
    s.detour_traversals = acc.detour;
    s.direct_traversals = direct;
    s.detour_length = acc.shortest;
    s.benefit = static_cast<double>(acc.detour) / total;
    out.push_back(s);
  }

  std::sort(out.begin(), out.end(),
            [](const LinkSuggestion& a, const LinkSuggestion& b) {
              if (a.benefit != b.benefit) return a.benefit > b.benefit;
              if (a.detour_traversals != b.detour_traversals)
                return a.detour_traversals > b.detour_traversals;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  if (out.size() > options.max_suggestions)
    out.resize(options.max_suggestions);
  return out;
}

}  // namespace prord::logmining
