// Association-rule mining (Apriori, [23][24]).
//
// Sessions are treated as transactions over pages. Frequent itemsets up to
// `max_itemset` are mined level-wise, then rules X -> y with a single-page
// consequent are extracted. Set-based rules are the paper's comparator to
// the sequence-based predictors in predictor.h (Section 2.2.3 cites [21]:
// sequence rules beat association rules for next-request prediction — the
// mining micro-bench reproduces that comparison).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "logmining/predictor.h"
#include "logmining/session.h"

namespace prord::logmining {

struct AssociationRule {
  std::vector<trace::FileId> antecedent;  ///< sorted page set X
  trace::FileId consequent = trace::kInvalidFile;
  double support = 0.0;     ///< P(X ∪ {y}) over transactions
  double confidence = 0.0;  ///< P(y | X)
};

struct AprioriOptions {
  double min_support = 0.01;     ///< fraction of transactions
  double min_confidence = 0.25;
  std::size_t max_itemset = 3;   ///< largest frequent-itemset size
};

class AssociationRuleMiner {
 public:
  explicit AssociationRuleMiner(AprioriOptions options = {});

  /// Mines rules from sessions (each session = one transaction; duplicate
  /// page views collapse to one item).
  void train(std::span<const Session> sessions);

  const std::vector<AssociationRule>& rules() const noexcept { return rules_; }

  /// Number of frequent itemsets found per level (diagnostics).
  const std::vector<std::size_t>& level_sizes() const noexcept {
    return level_sizes_;
  }

  /// Predicts the next page for a context by firing the highest-confidence
  /// rule whose antecedent is a subset of the context pages.
  std::optional<Prediction> predict(std::span<const trace::FileId> context,
                                    double min_confidence) const;

 private:
  AprioriOptions options_;
  std::vector<AssociationRule> rules_;
  std::vector<std::size_t> level_sizes_;
};

}  // namespace prord::logmining
