// User categorization (Sections 3.1 and 4.1).
//
// Users are classified into groups (e.g. current students / prospective
// students / faculty / staff / other on a university site) by comparing
// their current access path with per-group path profiles mined from the
// logs. "The longer the comparison paths are, the better the confidence of
// the predicted category" — confidence here grows with the number of pages
// matched.
//
// Training is available in two modes:
//   * supervised: sessions come with ground-truth labels (the synthetic
//     generator provides them; a production deployment would label by
//     login/cookie or analyst-defined rules);
//   * unsupervised: sessions are labeled by their dominant site section,
//     the observable proxy for the group structure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "logmining/session.h"

namespace prord::logmining {

struct Categorization {
  std::uint32_t group = 0;
  double confidence = 0.0;  ///< mean per-page posterior over the path
};

class UserCategorizer {
 public:
  /// Supervised training: `labels[i]` is the group of `sessions[i]`.
  void train(std::span<const Session> sessions,
             std::span<const std::uint32_t> labels);

  /// Unsupervised training: each session is labeled with the section that
  /// dominates it. `section_of(page)` maps a page to its section id.
  template <typename SectionFn>
  void train_by_section(std::span<const Session> sessions,
                        SectionFn section_of, std::uint32_t num_sections);

  /// Classifies an access-path prefix. Returns the max-posterior group;
  /// confidence is the geometric-mean per-page posterior, so longer
  /// informative paths raise it.
  Categorization classify(std::span<const trace::FileId> path) const;

  std::size_t num_groups() const noexcept { return group_page_counts_.size(); }
  bool trained() const noexcept { return total_pages_ > 0; }

 private:
  void add_session(std::span<const trace::FileId> pages, std::uint32_t label);
  void finalize();

  // group -> page -> count, plus totals for smoothing.
  std::vector<std::unordered_map<trace::FileId, double>> group_page_counts_;
  std::vector<double> group_totals_;
  std::vector<double> group_priors_;
  double total_pages_ = 0.0;
};

template <typename SectionFn>
void UserCategorizer::train_by_section(std::span<const Session> sessions,
                                       SectionFn section_of,
                                       std::uint32_t num_sections) {
  std::vector<std::uint32_t> labels;
  labels.reserve(sessions.size());
  for (const auto& s : sessions) {
    std::vector<std::uint32_t> votes(num_sections, 0);
    for (trace::FileId p : s.pages) {
      const std::uint32_t sec = section_of(p);
      if (sec < num_sections) ++votes[sec];
    }
    labels.push_back(static_cast<std::uint32_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin()));
  }
  train(sessions, labels);
}

}  // namespace prord::logmining
