// End-to-end mining pipeline.
//
// Bundles the offline pass the paper's scripts perform on historical logs:
// session reconstruction, next-page predictor training, bundle detection,
// and popularity seeding. The resulting model is handed to the PRORD
// front-end/back-ends, which keep updating it online (dynamic tracking).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>

#include "logmining/bundle.h"
#include "logmining/popularity.h"
#include "logmining/predictor.h"
#include "logmining/session.h"

namespace prord::logmining {

enum class PredictorKind {
  kCandidatePath,  ///< the paper's Algorithms 1 & 2 (default)
  kMarkov,         ///< j-order PPM [26]
  kDependencyGraph ///< Padmanabhan/Mogul DG [19]
};

struct MiningConfig {
  PredictorKind predictor = PredictorKind::kCandidatePath;
  unsigned predictor_order = 2;        ///< Fig. 3 uses a 2-order graph
  double prefetch_threshold = 0.4;     ///< Algorithm 2's Threshold
  double bundle_min_cooccurrence = 0.5;
  sim::SimTime popularity_halflife = sim::sec(600.0);
  SessionOptions session{};
};

class MiningModel {
 public:
  /// Runs the offline mining pass over a historical request stream.
  MiningModel(std::span<const trace::Request> history,
              const MiningConfig& config);

  /// Mines from already-reconstructed sessions plus the raw request
  /// window they came from — the online re-mining entry point: the stream
  /// sessionizer maintains sessions incrementally, so re-running the
  /// offline splitter over the window would duplicate (and disagree with)
  /// that work. `config.session` is ignored here.
  ///
  /// When `warm_start` is given, the predictor is *cloned* from it instead
  /// of being trained on `sessions`: the serving predictor already learns
  /// every transition online (Prord::on_routed), so retraining from a thin
  /// window would discard that accumulated state — the adaptation loop
  /// clones it and ages the copy toward recency. Bundles and popularity
  /// are still re-mined from the window (they are what drift actually
  /// moves).
  MiningModel(std::span<const Session> sessions,
              std::span<const trace::Request> requests,
              const MiningConfig& config,
              const MiningModel* warm_start = nullptr);

  const MiningConfig& config() const noexcept { return config_; }

  Predictor& predictor() noexcept { return *predictor_; }
  const Predictor& predictor() const noexcept { return *predictor_; }

  BundleMiner& bundles() noexcept { return bundles_; }
  const BundleMiner& bundles() const noexcept { return bundles_; }

  PopularityTracker& popularity() noexcept { return popularity_; }
  const PopularityTracker& popularity() const noexcept { return popularity_; }

  std::size_t training_sessions() const noexcept { return num_sessions_; }

  /// Serializes the whole mined state (predictor + bundles + popularity)
  /// to a text stream — the artifact the offline mining scripts hand to
  /// the distributor process.
  void save(std::ostream& out) const;

  /// Restores a model saved with an equivalent MiningConfig (predictor
  /// kind/order and popularity halflife must match). Returns nullopt on a
  /// malformed or mismatched stream.
  static std::optional<MiningModel> load(std::istream& in,
                                         const MiningConfig& config);

 private:
  explicit MiningModel(const MiningConfig& config);  // empty, for load()

  MiningConfig config_;
  std::unique_ptr<Predictor> predictor_;
  BundleMiner bundles_;
  PopularityTracker popularity_;
  std::size_t num_sessions_ = 0;
};

/// Factory used by MiningModel and the benches.
std::unique_ptr<Predictor> make_predictor(PredictorKind kind, unsigned order);

}  // namespace prord::logmining
