#include "logmining/categorizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prord::logmining {

void UserCategorizer::add_session(std::span<const trace::FileId> pages,
                                  std::uint32_t label) {
  if (label >= group_page_counts_.size()) {
    group_page_counts_.resize(label + 1);
    group_totals_.resize(label + 1, 0.0);
    group_priors_.resize(label + 1, 0.0);
  }
  for (trace::FileId p : pages) {
    group_page_counts_[label][p] += 1.0;
    group_totals_[label] += 1.0;
    total_pages_ += 1.0;
  }
  group_priors_[label] += 1.0;
}

void UserCategorizer::train(std::span<const Session> sessions,
                            std::span<const std::uint32_t> labels) {
  if (sessions.size() != labels.size())
    throw std::invalid_argument("UserCategorizer::train: size mismatch");
  for (std::size_t i = 0; i < sessions.size(); ++i)
    add_session(sessions[i].pages, labels[i]);
  finalize();
}

void UserCategorizer::finalize() {
  double total_sessions = 0.0;
  for (double p : group_priors_) total_sessions += p;
  if (total_sessions > 0)
    for (double& p : group_priors_) p = std::max(p / total_sessions, 1e-9);
}

Categorization UserCategorizer::classify(
    std::span<const trace::FileId> path) const {
  Categorization best;
  if (!trained() || path.empty()) return best;

  const std::size_t g_count = group_page_counts_.size();
  // Naive-Bayes over the path with Laplace smoothing; the winning group's
  // posterior (geometric mean per page) is the confidence.
  std::vector<double> log_post(g_count);
  for (std::size_t g = 0; g < g_count; ++g) {
    double lp = std::log(group_priors_[g]);
    const double denom = group_totals_[g] + 1.0;
    for (trace::FileId p : path) {
      const auto it = group_page_counts_[g].find(p);
      const double cnt = it == group_page_counts_[g].end() ? 0.0 : it->second;
      lp += std::log((cnt + 0.1) / denom);
    }
    log_post[g] = lp;
  }
  const auto best_it = std::max_element(log_post.begin(), log_post.end());
  best.group = static_cast<std::uint32_t>(best_it - log_post.begin());

  // Softmax over log-posteriors for a calibrated confidence.
  double denom = 0.0;
  for (double lp : log_post) denom += std::exp(lp - *best_it);
  best.confidence = 1.0 / denom;
  return best;
}

}  // namespace prord::logmining
