#include "logmining/mining_model.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace prord::logmining {

std::unique_ptr<Predictor> make_predictor(PredictorKind kind, unsigned order) {
  switch (kind) {
    case PredictorKind::kCandidatePath:
      return std::make_unique<CandidatePathPredictor>(order);
    case PredictorKind::kMarkov:
      return std::make_unique<MarkovPredictor>(order);
    case PredictorKind::kDependencyGraph:
      return std::make_unique<DependencyGraphPredictor>(order);
  }
  throw std::invalid_argument("make_predictor: unknown kind");
}

MiningModel::MiningModel(const MiningConfig& config)
    : config_(config),
      predictor_(make_predictor(config.predictor, config.predictor_order)),
      bundles_(config.bundle_min_cooccurrence),
      popularity_(config.popularity_halflife) {}

void MiningModel::save(std::ostream& out) const {
  out << "prord-mining-model 1\n";
  out << "kind " << static_cast<int>(config_.predictor) << " order "
      << config_.predictor_order << " sessions " << num_sessions_ << '\n';
  predictor_->save(out);
  bundles_.save(out);
  popularity_.save(out);
}

std::optional<MiningModel> MiningModel::load(std::istream& in,
                                             const MiningConfig& config) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "prord-mining-model" ||
      version != 1)
    return std::nullopt;
  std::string tag1, tag2, tag3;
  int kind = -1;
  unsigned order = 0;
  std::size_t sessions = 0;
  if (!(in >> tag1 >> kind >> tag2 >> order >> tag3 >> sessions) ||
      tag1 != "kind" || tag2 != "order" || tag3 != "sessions")
    return std::nullopt;
  if (kind != static_cast<int>(config.predictor) ||
      order != config.predictor_order)
    return std::nullopt;

  MiningModel model(config);
  model.num_sessions_ = sessions;
  if (!model.predictor_->load(in)) return std::nullopt;
  if (!model.bundles_.load(in)) return std::nullopt;
  if (!model.popularity_.load(in)) return std::nullopt;
  return model;
}

MiningModel::MiningModel(std::span<const trace::Request> history,
                         const MiningConfig& config)
    : config_(config),
      predictor_(make_predictor(config.predictor, config.predictor_order)),
      bundles_(config.bundle_min_cooccurrence),
      popularity_(config.popularity_halflife) {
  const auto sessions = build_sessions(history, config.session);
  num_sessions_ = sessions.size();
  for (const auto& s : sessions) predictor_->observe(s.pages);
  bundles_.observe(history);
  bundles_.finalize();
  popularity_.seed(history);
}

MiningModel::MiningModel(std::span<const Session> sessions,
                         std::span<const trace::Request> requests,
                         const MiningConfig& config,
                         const MiningModel* warm_start)
    : config_(config),
      predictor_(warm_start
                     ? warm_start->predictor().clone()
                     : make_predictor(config.predictor,
                                      config.predictor_order)),
      bundles_(warm_start ? warm_start->bundles()
                          : BundleMiner(config.bundle_min_cooccurrence)),
      popularity_(config.popularity_halflife) {
  num_sessions_ = sessions.size();
  if (!warm_start)
    for (const auto& s : sessions) predictor_->observe(s.pages);
  // Bundles are cumulative either way: co-occurrence *ratios* are what
  // finalize() thresholds, so folding the window into carried-over
  // counters keeps structural bundles stable while still admitting pages
  // the training log undersampled.
  bundles_.observe(requests);
  bundles_.finalize();
  // Popularity also carries over: the serving tracker has accumulated
  // online record_hit() mass that a window-only re-seed would discard,
  // and its own per-entry timestamp decay already retires stale hits —
  // no extra aging needed. The window's requests stack on top.
  if (warm_start) popularity_ = warm_start->popularity();
  popularity_.seed(requests);
}

}  // namespace prord::logmining
