// Bundle mining (Section 3.2 / [7]).
//
// A bundle is a main page plus the embedded objects the browser fetches
// with it. The miner counts (page, object) co-occurrences in the log and
// keeps objects that accompany the page often enough. PRORD uses bundles
// twice: the front-end forwards embedded-object requests to the back-end
// that served the page (no dispatcher contact), and the back-end prefetches
// a page's bundle into memory when the page is requested.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/workload.h"

namespace prord::logmining {

class BundleMiner {
 public:
  /// `min_cooccurrence` is the fraction of a page's views an object must
  /// accompany to join the bundle.
  explicit BundleMiner(double min_cooccurrence = 0.5);

  /// Counts parent-attributed embedded fetches from a request stream.
  void observe(std::span<const trace::Request> requests);

  /// Finalizes bundles from the counters. Must be called after observe();
  /// may be called repeatedly as more data arrives.
  void finalize();

  /// Embedded objects bundled with `page` (empty if none). Valid after
  /// finalize().
  std::span<const trace::FileId> bundle_of(trace::FileId page) const;

  /// True if `object` is in `page`'s bundle.
  bool in_bundle(trace::FileId page, trace::FileId object) const;

  std::size_t num_bundles() const noexcept { return bundles_.size(); }

  /// Total bytes of a bundle given a file-size oracle.
  std::uint64_t bundle_bytes(trace::FileId page,
                             const trace::FileTable& files) const;

  /// Serializes the co-occurrence counters (finalized bundles are derived
  /// state and rebuilt on load).
  void save(std::ostream& out) const;

  /// Restores counters saved by save() and re-finalizes. Returns false on
  /// malformed input (state unspecified).
  bool load(std::istream& in);

 private:
  struct PageCounts {
    std::uint64_t views = 0;
    std::unordered_map<trace::FileId, std::uint64_t> objects;
  };

  double min_cooccurrence_;
  std::unordered_map<trace::FileId, PageCounts> counts_;
  std::unordered_map<trace::FileId, std::vector<trace::FileId>> bundles_;
};

}  // namespace prord::logmining
