// Replication planning — Algorithm 3.
//
// Every t seconds the rank table is sorted and each file's replica count is
// set by comparing its rank against fractions of a pivot T1:
//
//     rank >  3/4*T1          -> replicate on ALL N servers
//     rank in (1/2, 3/4]*T1   -> ceil(3N/4) servers
//     rank in (1/4, 1/2]*T1   -> ceil(N/2) servers
//     rank in (1/8, 1/4]*T1   -> NO_CHANGE (keep current replicas)
//     rank <= 1/8*T1          -> NONE (single demand-loaded copy only)
//
// The paper leaves the (3/4*T1, T1] band unspecified ("> T1" vs "between
// 1/2 and 3/4"); we fold it into the ALL tier, which keeps the mapping
// monotone. T1 defaults to the rank of the table's top entry, making the
// tiers relative to the current hottest object — this matches the text's
// use of T1 as the full-replication bar.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "logmining/popularity.h"

namespace prord::logmining {

enum class ReplicaTier : std::uint8_t {
  kAll,       ///< every back-end holds it
  kThreeQuarter,
  kHalf,
  kNoChange,  ///< leave whatever replication exists
  kNone,      ///< no proactive replicas
};

struct ReplicaDirective {
  trace::FileId file = trace::kInvalidFile;
  ReplicaTier tier = ReplicaTier::kNone;
  /// Concrete replica target for `num_servers`; 0 for kNoChange/kNone
  /// (callers interpret those tiers without a count).
  std::uint32_t target_replicas = 0;
};

struct ReplicationPlanOptions {
  /// Pivot T1 as a fraction of the top rank (1.0 = top entry's rank).
  double t1_fraction_of_top = 1.0;
  /// Ignore files with rank below this absolute floor (noise suppression).
  double min_rank = 1.0;
  /// Cap on directives per planning round (hottest first); 0 = unlimited.
  std::size_t max_directives = 0;
};

/// Algorithm 3 steps (i)-(ii): produces replica directives for the current
/// rank table. Directives are ordered hottest-first.
std::vector<ReplicaDirective> plan_replication(
    std::span<const RankEntry> rank_table, std::uint32_t num_servers,
    const ReplicationPlanOptions& options = {});

/// Maps a tier to a concrete replica count for an N-server cluster.
std::uint32_t tier_replicas(ReplicaTier tier, std::uint32_t num_servers);

}  // namespace prord::logmining
