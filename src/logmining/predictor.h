// Next-page predictors mined from navigation sessions.
//
// Three predictors from the paper's design space:
//
//  * MarkovPredictor — j-order Prediction-by-Partial-Match [26]: exact
//    preceding contexts of length j..1 with longest-match back-off. This is
//    the shape of PRORD's Fig. 3 "n-order dependency graph": the edge
//    A,B -> C carries the confidence that a user whose last pages were A,B
//    continues to C.
//  * DependencyGraphPredictor — Padmanabhan/Mogul dependency graph [19]:
//    order-1 contexts with a lookahead window (B is counted after A if it
//    appears within the next w views, not only immediately next).
//  * CandidatePathPredictor — the paper's Algorithms 1 & 2: candidate
//    paths are enumerated only along *directly linked* pages (bounding the
//    otherwise O(l^(n+1)) context space), and per-sequence hit counters
//    select the prefetch page whose confidence clears a threshold.
//
// All predictors train on sessions and answer: given the user's recent
// page sequence, which page comes next and with what confidence?
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "logmining/session.h"
#include "trace/log_record.h"

namespace prord::logmining {

struct Prediction {
  trace::FileId page = trace::kInvalidFile;
  double confidence = 0.0;   ///< P(next == page | context)
  unsigned matched_order = 0;  ///< context length that produced the estimate
};

/// Common interface so PRORD and the benches can swap predictors.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Trains on one complete session (offline mining pass).
  virtual void observe(std::span<const trace::FileId> pages) = 0;

  /// Online update: `page` followed the given context (dynamic tracking).
  virtual void observe_transition(std::span<const trace::FileId> context,
                                  trace::FileId page) = 0;

  /// Best next-page guess for a context (most recent page last), or
  /// nullopt if nothing clears `min_confidence`.
  virtual std::optional<Prediction> predict(
      std::span<const trace::FileId> context, double min_confidence) const = 0;

  /// Top-k candidates, highest confidence first.
  virtual std::vector<Prediction> predict_all(
      std::span<const trace::FileId> context, std::size_t k) const = 0;

  /// Number of stored (context -> successor) entries: the memory footprint
  /// the paper worries about in Section 4.1.1(i).
  virtual std::size_t num_entries() const = 0;

  /// Serializes the trained state (text format). The offline mining pass
  /// runs in a separate process from the distributor; save/load is the
  /// hand-off. A loaded predictor continues answering and learning exactly
  /// where the saved one stopped.
  virtual void save(std::ostream& out) const = 0;

  /// Restores state saved by the same predictor kind and configuration.
  /// Returns false (state unspecified) on a malformed or mismatched
  /// stream.
  virtual bool load(std::istream& in) = 0;

  /// Ages the counters: multiplies every count by `keep_fraction` in
  /// (0, 1], flooring, then clamps to at least `min_count`. With the
  /// default min_count of 0, entries that reach zero are dropped —
  /// long-running deployments call this periodically so the model tracks
  /// the current navigation behaviour instead of the site's whole
  /// history. The online adaptation loop passes min_count = 1: decay
  /// re-ranks successors toward recent traffic, but evicting a context
  /// outright would shrink prediction coverage, which costs more accuracy
  /// than a stale rank.
  virtual void age(double keep_fraction, std::uint64_t min_count = 0) = 0;

  /// Deep copy with identical trained state and configuration. The online
  /// adaptation loop warm-starts each re-mined model from the serving
  /// predictor instead of retraining from a thin window.
  virtual std::unique_ptr<Predictor> clone() const = 0;
};

/// j-order PPM with longest-context-first back-off.
class MarkovPredictor final : public Predictor {
 public:
  explicit MarkovPredictor(unsigned order);

  void observe(std::span<const trace::FileId> pages) override;
  void observe_transition(std::span<const trace::FileId> context,
                          trace::FileId page) override;
  std::optional<Prediction> predict(std::span<const trace::FileId> context,
                                    double min_confidence) const override;
  std::vector<Prediction> predict_all(std::span<const trace::FileId> context,
                                      std::size_t k) const override;
  std::size_t num_entries() const override;
  void save(std::ostream& out) const override;
  bool load(std::istream& in) override;
  void age(double keep_fraction, std::uint64_t min_count = 0) override;
  std::unique_ptr<Predictor> clone() const override {
    return std::make_unique<MarkovPredictor>(*this);
  }

  unsigned order() const noexcept { return order_; }

 private:
  struct ContextStats {
    std::uint64_t total = 0;
    std::unordered_map<trace::FileId, std::uint64_t> next;
  };

  static std::uint64_t context_key(std::span<const trace::FileId> ctx);
  void count(std::span<const trace::FileId> ctx, trace::FileId next);

  unsigned order_;
  // One table per context length (index 0 = order-1 contexts).
  std::vector<std::unordered_map<std::uint64_t, ContextStats>> tables_;
};

/// Padmanabhan/Mogul dependency graph with lookahead window.
class DependencyGraphPredictor final : public Predictor {
 public:
  explicit DependencyGraphPredictor(unsigned lookahead_window);

  void observe(std::span<const trace::FileId> pages) override;
  void observe_transition(std::span<const trace::FileId> context,
                          trace::FileId page) override;
  std::optional<Prediction> predict(std::span<const trace::FileId> context,
                                    double min_confidence) const override;
  std::vector<Prediction> predict_all(std::span<const trace::FileId> context,
                                      std::size_t k) const override;
  std::size_t num_entries() const override;
  void save(std::ostream& out) const override;
  bool load(std::istream& in) override;
  void age(double keep_fraction, std::uint64_t min_count = 0) override;
  std::unique_ptr<Predictor> clone() const override {
    return std::make_unique<DependencyGraphPredictor>(*this);
  }

  unsigned window() const noexcept { return window_; }

 private:
  struct Node {
    std::uint64_t occurrences = 0;
    std::unordered_map<trace::FileId, std::uint64_t> arcs;
  };
  std::unordered_map<trace::FileId, Node> nodes_;
  unsigned window_;
};

/// The paper's own scheme (Algorithms 1 & 2).
///
/// Candidate paths of length <= `order` are generated only along observed
/// direct links (Algorithm 1's make_candidate_path), and a per-sequence hit
/// table accumulates how often each candidate page actually followed
/// (Algorithm 2's get_prefetch_page). Adjacency is mined from first-order
/// transitions in the training log, standing in for the site's hyperlink
/// map the authors read from the server.
class CandidatePathPredictor final : public Predictor {
 public:
  explicit CandidatePathPredictor(unsigned order);

  void observe(std::span<const trace::FileId> pages) override;
  void observe_transition(std::span<const trace::FileId> context,
                          trace::FileId page) override;
  std::optional<Prediction> predict(std::span<const trace::FileId> context,
                                    double min_confidence) const override;
  std::vector<Prediction> predict_all(std::span<const trace::FileId> context,
                                      std::size_t k) const override;
  std::size_t num_entries() const override;
  void save(std::ostream& out) const override;
  bool load(std::istream& in) override;
  void age(double keep_fraction, std::uint64_t min_count = 0) override;
  std::unique_ptr<Predictor> clone() const override {
    return std::make_unique<CandidatePathPredictor>(*this);
  }

  /// Algorithm 1: paths of length <= order starting at `page`, following
  /// the mined link structure. Exposed for tests and the micro-bench.
  std::vector<std::vector<trace::FileId>> candidate_paths(
      trace::FileId page, std::size_t max_paths = 256) const;

  /// Number of pages with at least one outgoing link.
  std::size_t num_linked_pages() const noexcept { return links_.size(); }

 private:
  void add_link(trace::FileId from, trace::FileId to);

  unsigned order_;
  std::unordered_map<trace::FileId, std::vector<trace::FileId>> links_;
  // Hit counters keyed by hashed context (suffix up to `order_`), as in
  // Algorithm 2's hit_candidate_path[sequence][page].
  MarkovPredictor counts_;
};

}  // namespace prord::logmining
