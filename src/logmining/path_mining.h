// Navigation-path fragment mining (WUM-style, [11][12][28]).
//
// Extracts frequent *contiguous* navigation fragments from sessions —
// "Mining Web Navigation Path Fragments" — and answers the two questions
// the web-utilization-mining tools are built for:
//   * which path fragments of length k are traversed most often, and
//   * which paths lead users into a given target page (Spiliopoulou's
//     "sub-paths which lead to a target item of interest").
// The categorizer and the site-reorganization analyses build on these.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "logmining/session.h"

namespace prord::logmining {

struct PathFragment {
  std::vector<trace::FileId> pages;  ///< contiguous page sequence
  std::uint64_t count = 0;           ///< traversals over all sessions
};

class PathMiner {
 public:
  /// Mines fragments of length `min_len`..`max_len` (page counts) that
  /// occur at least `min_count` times.
  PathMiner(std::size_t min_len = 2, std::size_t max_len = 4,
            std::uint64_t min_count = 2);

  void train(std::span<const Session> sessions);

  /// All frequent fragments, most-traversed first (ties: shorter first,
  /// then lexicographic) — deterministic.
  const std::vector<PathFragment>& fragments() const noexcept {
    return fragments_;
  }

  /// Frequent fragments of exactly `len` pages, most-traversed first.
  std::vector<PathFragment> fragments_of_length(std::size_t len) const;

  /// Fragments that *end at* `target`, most-traversed first: the entry
  /// paths users take into a page of interest.
  std::vector<PathFragment> paths_to(trace::FileId target,
                                     std::size_t max_results = 16) const;

  /// Traversal count of an exact fragment (0 if not frequent).
  std::uint64_t count_of(std::span<const trace::FileId> pages) const;

 private:
  static std::uint64_t key_of(std::span<const trace::FileId> pages);

  std::size_t min_len_, max_len_;
  std::uint64_t min_count_;
  std::vector<PathFragment> fragments_;
  std::unordered_map<std::uint64_t, std::uint64_t> index_;  // key -> pos+1
};

}  // namespace prord::logmining
