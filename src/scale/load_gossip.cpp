#include "scale/load_gossip.h"

namespace prord::scale {

std::array<std::uint32_t, kMaxGossipBackends> merge_external_load(
    std::span<const ShardLoadSnapshot> snapshots, std::uint32_t self_shard,
    std::uint32_t backends, std::int64_t now_us,
    const GossipOptions& options) {
  std::array<std::uint32_t, kMaxGossipBackends> merged{};
  if (backends > kMaxGossipBackends) backends = kMaxGossipBackends;
  const std::int64_t horizon =
      options.staleness_us > 0 ? options.staleness_us : 1;
  for (const ShardLoadSnapshot& snap : snapshots) {
    if (snap.shard == self_shard || snap.version == 0) continue;
    const std::int64_t num =
        gossip_decay_num(now_us - snap.published_us, horizon);
    if (num == 0) continue;
    const std::uint32_t limit =
        snap.backends < backends ? snap.backends : backends;
    for (std::uint32_t b = 0; b < limit; ++b) {
      // Integer decay: floor(inflight * (horizon - age) / horizon). At
      // age 0 this is exactly the peer's published count.
      merged[b] += static_cast<std::uint32_t>(
          static_cast<std::int64_t>(snap.inflight[b]) * num / horizon);
    }
  }
  return merged;
}

LoadGossipBoard::LoadGossipBoard(std::uint32_t shards)
    : slots_(new Slot[shards > 0 ? shards : 1]),
      shards_(shards > 0 ? shards : 1) {}

void LoadGossipBoard::publish(std::uint32_t shard,
                              const ShardLoadSnapshot& snap) noexcept {
  if (shard >= shards_) return;
  Slot& slot = slots_[shard];
  const std::uint32_t next =
      1u - slot.active.load(std::memory_order_relaxed);
  Buffer& buf = slot.buffers[next];
  const std::uint64_t seq = buf.seq.load(std::memory_order_relaxed);
  buf.seq.store(seq + 1, std::memory_order_release);  // odd: write begins
  std::size_t w = 0;
  auto put = [&](std::uint64_t v) {
    buf.words[w++].store(v, std::memory_order_relaxed);
  };
  put(snap.shard);
  put(snap.backends);
  put(snap.version);
  put(static_cast<std::uint64_t>(snap.published_us));
  for (std::uint32_t b = 0; b < kMaxGossipBackends; ++b)
    put(snap.inflight[b]);
  put(snap.routed);
  put(snap.dispatches);
  put(snap.handoffs);
  put(snap.forwards);
  buf.seq.store(seq + 2, std::memory_order_release);  // even: write done
  slot.active.store(next, std::memory_order_release);
}

bool LoadGossipBoard::read(std::uint32_t shard,
                           ShardLoadSnapshot& out) const noexcept {
  if (shard >= shards_) return false;
  const Slot& slot = slots_[shard];
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint32_t idx = slot.active.load(std::memory_order_acquire);
    const Buffer& buf = slot.buffers[idx];
    const std::uint64_t s1 = buf.seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // mid-publish; the writer lapped us
    std::array<std::uint64_t, kWords> words;
    for (std::size_t w = 0; w < kWords; ++w)
      words[w] = buf.words[w].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (buf.seq.load(std::memory_order_relaxed) != s1) continue;
    std::size_t w = 0;
    out.shard = static_cast<std::uint32_t>(words[w++]);
    out.backends = static_cast<std::uint32_t>(words[w++]);
    out.version = words[w++];
    out.published_us = static_cast<std::int64_t>(words[w++]);
    for (std::uint32_t b = 0; b < kMaxGossipBackends; ++b)
      out.inflight[b] = static_cast<std::uint32_t>(words[w++]);
    out.routed = words[w++];
    out.dispatches = words[w++];
    out.handoffs = words[w++];
    out.forwards = words[w++];
    return out.version > 0;
  }
  return false;
}

std::array<std::uint32_t, kMaxGossipBackends> LoadGossipBoard::merged_external(
    std::uint32_t self_shard, std::uint32_t backends, std::int64_t now_us,
    const GossipOptions& options, std::uint32_t* torn) const {
  std::array<std::uint32_t, kMaxGossipBackends> merged{};
  if (backends > kMaxGossipBackends) backends = kMaxGossipBackends;
  std::uint32_t torn_count = 0;
  ShardLoadSnapshot snap;
  for (std::uint32_t s = 0; s < shards_; ++s) {
    if (s == self_shard) continue;
    if (!read(s, snap)) {
      ++torn_count;
      continue;
    }
    const std::array<std::uint32_t, kMaxGossipBackends> one =
        merge_external_load(std::span<const ShardLoadSnapshot>(&snap, 1),
                            self_shard, backends, now_us, options);
    for (std::uint32_t b = 0; b < backends; ++b) merged[b] += one[b];
  }
  if (torn) *torn = torn_count;
  return merged;
}

}  // namespace prord::scale
