// run_live_sharded: the sharded counterpart of net::run_live.
//
// Same assembly (workers, belief routers, workload replay, scrapes,
// consolidation) but with LiveConfig::shards distributor shards behind
// one port (ShardedFrontend), per-shard mining models (PRORD's
// popularity tracking mutates the model, so shards must not share one),
// a multi-threaded load generator, and shard-labeled /metrics + /slo
// aggregation. At shards == 1 the routing behaviour is identical to
// run_live — same policies, same decision-commit path — which the
// routing-parity test keeps pinned.
#pragma once

#include "net/live_cluster.h"

namespace prord::scale {

/// Blocking end-to-end sharded run. Honors LiveConfig::shards,
/// gossip_interval_us, gossip_staleness_us, reuseport and load_threads;
/// every other knob means what it means for net::run_live.
net::LiveRunResult run_live_sharded(const net::LiveConfig& config);

}  // namespace prord::scale
