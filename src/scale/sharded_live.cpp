#include "scale/sharded_live.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "net/backend_worker.h"
#include "net/distributor.h"
#include "net/live_router.h"
#include "net/site_store.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "scale/sharded_frontend.h"

namespace prord::scale {
namespace {

/// Shard-labeled registry over the whole front end. Live scrapes read
/// only atomic distributor counters and the gossip board (the serving
/// shard must not touch a peer's RoutingCore); post-run, `routers` is
/// passed for the exact commit counters and routes_via breakdown.
obs::MetricRegistry build_sharded_registry(
    const ShardedFrontend& fe,
    const std::vector<net::BackendWorker*>& workers,
    const predict::IPredictor* predictor, const net::LoadGenResult* load,
    const std::vector<net::LiveRouter*>* routers) {
  obs::MetricRegistry reg;
  const std::uint32_t n = fe.shards();

  std::uint64_t requests = 0, responses = 0, failures = 0, not_found = 0;
  std::uint64_t parse_errors = 0, scrapes = 0;
  std::uint64_t trace_spans = 0, trace_dropped = 0, slo_violations = 0;
  std::uint64_t flight_dumps = 0;
  std::uint64_t accepts = 0, bursts = 0, eagain = 0, emfile = 0;
  std::uint64_t handoff = 0, adopted = 0;
  std::uint64_t pf_issued = 0, pf_responses = 0, pf_hits = 0, pf_wasted = 0;
  std::uint64_t pf_drops = 0;
  reg.set_help("prord_live_shard_requests_total",
               "Client requests parsed, by front-end shard");
  for (std::uint32_t s = 0; s < n; ++s) {
    const auto& c = fe.shard(s).counters();
    requests += c.requests.load();
    responses += c.responses.load();
    failures += c.failures.load();
    not_found += c.not_found.load();
    parse_errors += c.parse_errors.load();
    scrapes += c.metrics_scrapes.load();
    trace_spans += c.trace_spans.load();
    trace_dropped += c.trace_dropped.load();
    slo_violations += c.slo_violations.load();
    flight_dumps += c.flight_dumps.load();
    accepts += c.accepts.load();
    bursts += c.accept_bursts.load();
    eagain += c.accept_eagain.load();
    emfile += c.accept_emfile.load();
    handoff += c.handoff_out.load();
    adopted += c.adopted.load();
    pf_issued += c.prefetch_issued.load();
    pf_responses += c.prefetch_responses.load();
    pf_hits += c.prefetch_hits.load();
    pf_wasted += c.prefetch_wasted.load();
    pf_drops += c.predict_drops.load();
    const obs::Labels labels{{"shard", std::to_string(s)}};
    reg.counter_add("prord_live_shard_requests_total", labels,
                    static_cast<double>(c.requests.load()));
    reg.counter_add("prord_live_shard_responses_total", labels,
                    static_cast<double>(c.responses.load()));
    reg.counter_add("prord_live_shard_failures_total", labels,
                    static_cast<double>(c.failures.load()));
    reg.counter_add("prord_live_shard_accepts_total", labels,
                    static_cast<double>(c.accepts.load()));
    reg.counter_add("prord_live_shard_adopted_total", labels,
                    static_cast<double>(c.adopted.load()));
    reg.counter_add("prord_live_shard_trace_spans_total", labels,
                    static_cast<double>(c.trace_spans.load()));
    reg.counter_add("prord_live_shard_slo_violations_total", labels,
                    static_cast<double>(c.slo_violations.load()));
  }

  // Aggregate totals under the same names the 1-shard registry uses, so
  // dashboards work unchanged against a sharded front end.
  reg.set_help("prord_live_requests_total",
               "Client requests parsed by the distributor (all shards)");
  reg.counter_add("prord_live_requests_total", {},
                  static_cast<double>(requests));
  reg.counter_add("prord_live_responses_total", {},
                  static_cast<double>(responses));
  reg.counter_add("prord_live_failures_total", {},
                  static_cast<double>(failures));
  reg.counter_add("prord_live_not_found_total", {},
                  static_cast<double>(not_found));
  reg.counter_add("prord_live_parse_errors_total", {},
                  static_cast<double>(parse_errors));
  reg.counter_add("prord_live_metrics_scrapes_total", {},
                  static_cast<double>(scrapes));
  reg.counter_add("prord_live_trace_spans_total", {},
                  static_cast<double>(trace_spans));
  reg.counter_add("prord_live_trace_dropped_total", {},
                  static_cast<double>(trace_dropped));
  reg.counter_add("prord_live_slo_violations_total", {},
                  static_cast<double>(slo_violations));
  reg.counter_add("prord_live_flight_dumps_total", {},
                  static_cast<double>(flight_dumps));

  // Accept-path accounting (satellite: storms are visible, not silent).
  reg.set_help("prord_live_accepts_total",
               "Connections accepted across all shards");
  reg.counter_add("prord_live_accepts_total", {},
                  static_cast<double>(accepts));
  reg.counter_add("prord_live_accept_bursts_total", {},
                  static_cast<double>(bursts));
  reg.counter_add("prord_live_accept_eagain_total", {},
                  static_cast<double>(eagain));
  reg.counter_add("prord_live_accept_emfile_total", {},
                  static_cast<double>(emfile));
  reg.counter_add("prord_live_handoff_out_total", {},
                  static_cast<double>(handoff));
  reg.counter_add("prord_live_adopted_total", {},
                  static_cast<double>(adopted));

  // Routing commits. Live: the gossip board carries every shard's
  // published counters (lock-free reads). Post-run: exact core reads.
  std::uint64_t routed = 0, dispatches = 0, handoffs = 0, forwards = 0;
  reg.set_help("prord_live_shard_routed_total",
               "RoutingCore commits, by front-end shard");
  if (routers != nullptr) {
    std::array<std::uint64_t, obs::kNumRouteVia> via_sum{};
    for (std::uint32_t s = 0; s < n; ++s) {
      const core::RoutingCore& core = (*routers)[s]->core();
      routed += core.routed();
      dispatches += core.dispatches();
      handoffs += core.handoffs();
      forwards += core.forwards();
      reg.counter_add("prord_live_shard_routed_total",
                      {{"shard", std::to_string(s)}},
                      static_cast<double>(core.routed()));
      const auto& via = core.routes_via();
      for (unsigned v = 0; v < obs::kNumRouteVia; ++v) via_sum[v] += via[v];
    }
    for (unsigned v = 0; v < obs::kNumRouteVia; ++v) {
      reg.counter_add(
          "prord_live_routes_via_total",
          {{"via", obs::route_via_name(static_cast<obs::RouteVia>(v))}},
          static_cast<double>(via_sum[v]));
    }
  } else {
    ShardLoadSnapshot snap;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!fe.board().read(s, snap)) continue;
      routed += snap.routed;
      dispatches += snap.dispatches;
      handoffs += snap.handoffs;
      forwards += snap.forwards;
      reg.counter_add("prord_live_shard_routed_total",
                      {{"shard", std::to_string(s)}},
                      static_cast<double>(snap.routed));
      reg.counter_add("prord_scale_gossip_publishes_total",
                      {{"shard", std::to_string(s)}},
                      static_cast<double>(snap.version));
    }
  }
  reg.set_help("prord_live_routed_total",
               "Requests committed through the shared RoutingCore");
  reg.counter_add("prord_live_routed_total", {}, static_cast<double>(routed));
  reg.counter_add("prord_live_dispatches_total", {},
                  static_cast<double>(dispatches));
  reg.counter_add("prord_live_handoffs_total", {},
                  static_cast<double>(handoffs));
  reg.counter_add("prord_live_forwards_total", {},
                  static_cast<double>(forwards));

  reg.set_help("prord_scale_shards", "Front-end distributor shard count");
  reg.gauge_set("prord_scale_shards", static_cast<double>(n));
  reg.gauge_set("prord_scale_reuseport", fe.reuseport_used() ? 1.0 : 0.0);

  for (const net::BackendWorker* w : workers)
    net::append_backend_metrics(reg, *w);

  if (predictor != nullptr) {
    net::append_predictor_service_metrics(reg, *predictor);
    reg.set_help("prord_predict_prefetch_issued_total",
                 "Cache-warming requests sent to backend workers");
    reg.counter_add("prord_predict_prefetch_issued_total", {},
                    static_cast<double>(pf_issued));
    reg.counter_add("prord_predict_prefetch_responses_total", {},
                    static_cast<double>(pf_responses));
    reg.counter_add("prord_predict_prefetch_hits_total", {},
                    static_cast<double>(pf_hits));
    reg.counter_add("prord_predict_prefetch_wasted_total", {},
                    static_cast<double>(pf_wasted));
    reg.counter_add("prord_predict_queue_drop_events_total", {},
                    static_cast<double>(pf_drops));
  }

  if (load != nullptr) {
    reg.counter_add("prord_live_client_issued_total", {},
                    static_cast<double>(load->issued));
    reg.counter_add("prord_live_client_completed_total", {},
                    static_cast<double>(load->completed));
    reg.counter_add("prord_live_client_failed_total", {},
                    static_cast<double>(load->failed));
    reg.gauge_set("prord_live_client_throughput_rps",
                  load->throughput_rps());
    reg.set_help("prord_live_client_latency_us",
                 "Send-to-response wall-clock latency per request");
    reg.stats_merge("prord_live_client_latency_us", {}, load->latency_us);
    if (load->latency_hist.count() > 0)
      reg.histogram_merge("prord_live_client_latency_us_hist", {},
                          load->latency_hist);
  }
  return reg;
}

/// /slo body for a sharded front end: aggregate + per-shard counters from
/// atomics, plus the serving shard's full local burn-rate evaluation.
std::string sharded_slo_json(const ShardedFrontend& fe, std::uint32_t self) {
  const std::uint32_t n = fe.shards();
  std::uint64_t requests = 0, responses = 0, failures = 0, violations = 0;
  std::string per_shard = "[";
  for (std::uint32_t s = 0; s < n; ++s) {
    const auto& c = fe.shard(s).counters();
    const std::uint64_t sr = c.requests.load();
    const std::uint64_t sp = c.responses.load();
    const std::uint64_t sf = c.failures.load();
    const std::uint64_t sv = c.slo_violations.load();
    requests += sr;
    responses += sp;
    failures += sf;
    violations += sv;
    if (s > 0) per_shard += ',';
    per_shard += "{\"shard\":" + std::to_string(s) +
                 ",\"requests\":" + std::to_string(sr) +
                 ",\"responses\":" + std::to_string(sp) +
                 ",\"failures\":" + std::to_string(sf) +
                 ",\"slo_violations\":" + std::to_string(sv) + "}";
  }
  per_shard += ']';
  return "{\"shards\":" + std::to_string(n) +
         ",\"serving_shard\":" + std::to_string(self) +
         ",\"aggregate\":{\"requests\":" + std::to_string(requests) +
         ",\"responses\":" + std::to_string(responses) +
         ",\"failures\":" + std::to_string(failures) +
         ",\"slo_violations\":" + std::to_string(violations) +
         "},\"per_shard\":" + per_shard +
         ",\"local\":" + fe.shard(self).slo_json() + "}\n";
}

}  // namespace

net::LiveRunResult run_live_sharded(const net::LiveConfig& config) {
  net::LiveRunResult result;

  net::LiveSetup setup;
  if (!net::prepare_live_setup(config, setup)) return result;
  result.workload = setup.workload_name;
  result.policy = core::policy_label(setup.cfg.policy);
  const std::uint32_t shards = std::max<std::uint32_t>(1, config.shards);
  result.shard_count = shards;

  if (config.flight_recorder || !config.flight_dump_path.empty())
    obs::FlightRecorder::instance().enable(config.flight_ring_capacity);

  // --- Workers (shared by all shards; their stats are atomic). ---
  net::SiteStore store(setup.eval.files);
  std::vector<std::unique_ptr<net::BackendWorker>> workers;
  std::vector<net::BackendWorker*> worker_ptrs;
  workers.reserve(config.backends);
  for (std::uint32_t i = 0; i < config.backends; ++i) {
    workers.push_back(
        std::make_unique<net::BackendWorker>(i, store, setup.capacity));
    if (!workers.back()->start()) {
      for (auto& w : workers) w->stop();
      return result;
    }
    worker_ptrs.push_back(workers.back().get());
  }

  // --- One private belief router per shard. PRORD's policy mutates its
  // mining model (popularity tracking), so every shard past the first
  // builds its own copy from the same training trace: identical priors,
  // independent evolution — the per-shard "PRORD placement view".
  std::vector<std::unique_ptr<net::LiveRouter>> routers;
  std::vector<net::LiveRouter*> router_ptrs;
  routers.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::shared_ptr<logmining::MiningModel> model = setup.model;
    if (s > 0 && setup.model) {
      model = std::make_shared<logmining::MiningModel>(setup.train.requests,
                                                       setup.mining);
    }
    routers.push_back(std::make_unique<net::LiveRouter>(
        setup.cfg, model, setup.eval.files, setup.demand, setup.pinned));
    router_ptrs.push_back(routers.back().get());
    for (std::uint32_t b = 0; b < config.backends; ++b) {
      net::BackendWorker* w = worker_ptrs[b];
      routers.back()->cluster().backend(b).set_proactive_observer(
          [w](trace::FileId file, std::uint32_t bytes, bool pin) {
            w->preload(file, bytes, pin);
          });
    }
  }

  // --- Prediction service: one instance, one SPSC feed link per shard.
  std::unique_ptr<predict::IPredictor> predictor;
  if (config.prefetch) {
    predictor = predict::make_prediction_service(config.predictor,
                                                 setup.model);
    predictor->start();
  }

  // --- Sharded front end. ---
  ShardedFrontendOptions fo;
  fo.shards = shards;
  fo.port = config.port;
  fo.allow_reuseport = config.reuseport;
  fo.gossip.interval_us = config.gossip_interval_us;
  fo.gossip.staleness_us = config.gossip_staleness_us;
  fo.obs.trace_sample_rate = config.trace_sample_rate;
  fo.obs.trace_seed = config.trace_seed;
  fo.obs.max_spans = config.max_spans;
  fo.obs.slo = config.slo;
  fo.obs.flight_dump_path = config.flight_dump_path;
  fo.predictor = predictor.get();
  fo.prefetch_min_confidence = config.predictor.confidence;
  fo.prefetch_fanout = config.predictor.max_associations;
  ShardedFrontend fe(router_ptrs, store, worker_ptrs, fo);
  fe.set_providers(
      [&fe, &worker_ptrs, &predictor](std::uint32_t) {
        return [&fe, &worker_ptrs, &predictor] {
          return obs::to_prometheus(build_sharded_registry(
              fe, worker_ptrs, predictor.get(), nullptr, nullptr));
        };
      },
      [&fe](std::uint32_t s) {
        return [&fe, s] { return sharded_slo_json(fe, s); };
      });
  if (!fe.start()) {
    for (auto& w : workers) w->stop();
    if (predictor) predictor->stop();
    return result;
  }
  result.started = true;
  result.reuseport_used = fe.reuseport_used();

  // --- Replay: one load-generator thread per slice of the request
  // budget (a single generator thread saturates near one core and would
  // become the bottleneck it is supposed to create).
  std::size_t load_threads =
      config.load_threads == 0 ? shards : config.load_threads;
  load_threads = std::max<std::size_t>(1, load_threads);
  const std::size_t total_requests = config.requests > 0
                                         ? config.requests
                                         : setup.eval.requests.size();
  load_threads = std::min(load_threads, std::max<std::size_t>(
                                            1, total_requests));
  std::vector<net::LoadGenResult> slices(load_threads);
  {
    std::vector<std::thread> threads;
    threads.reserve(load_threads);
    const auto t_start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < load_threads; ++t) {
      net::LoadGenOptions lg;
      lg.port = fe.port();
      lg.concurrency =
          std::max<std::size_t>(1, config.concurrency / load_threads);
      lg.total_requests = total_requests / load_threads +
                          (t == 0 ? total_requests % load_threads : 0);
      lg.pipeline_depth = config.pipeline_depth;
      lg.open_loop = config.open_loop;
      lg.time_scale = config.time_scale;
      lg.idle_timeout_us = config.idle_timeout_us;
      threads.emplace_back([&setup, lg, &slices, t] {
        net::LoadGenerator gen(setup.eval, lg);
        slices[t] = gen.run();
      });
    }
    for (auto& th : threads) th.join();
    for (const net::LoadGenResult& s : slices) {
      result.load.issued += s.issued;
      result.load.completed += s.completed;
      result.load.failed += s.failed;
      result.load.status_ok += s.status_ok;
      result.load.status_error += s.status_error;
      result.load.bytes_in += s.bytes_in;
      result.load.latency_us.merge(s.latency_us);
      result.load.latency_hist.merge(s.latency_hist);
    }
    result.load.duration_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
  }

  // Scrape /metrics and /slo over real sockets while the shards run.
  result.metrics_scrape = net::http_get(fe.port(), "/metrics");
  result.slo_scrape = net::http_get(fe.port(), "/slo");

  fe.stop();  // joins every shard thread; core reads are exact below
  for (auto& w : workers) w->stop();
  if (predictor) predictor->stop();

  // --- Consolidate. ---
  for (std::uint32_t s = 0; s < shards; ++s) {
    const net::LiveShardSnapshot snap = fe.snapshot(s);
    result.shards.push_back(snap);
    result.dist_requests += snap.requests;
    result.dist_responses += snap.responses;
    result.dist_failures += snap.failures;
    result.dist_not_found += snap.not_found;
    const auto& c = fe.shard(s).counters();
    result.dist_parse_errors += c.parse_errors.load();
    result.trace_dropped += c.trace_dropped.load();
    result.flight_dumps += c.flight_dumps.load();
    result.trace_spans += snap.trace_spans;
    result.slo_violations += snap.slo_violations;
    const core::RoutingCore& core = routers[s]->core();
    result.routed += core.routed();
    result.dispatches += core.dispatches();
    result.handoffs += core.handoffs();
    result.forwards += core.forwards();
    for (const obs::LiveSpan& span : fe.shard(s).spans())
      result.spans.push_back(span);
    if (predictor) {
      result.prefetch_issued += c.prefetch_issued.load();
      result.prefetch_responses += c.prefetch_responses.load();
      result.prefetch_hits += c.prefetch_hits.load();
      result.prefetch_wasted += c.prefetch_wasted.load();
      result.predict_drops += c.predict_drops.load();
    }
  }
  for (const auto& w : workers)
    result.workers.push_back(net::snapshot_worker(*w));
  if (predictor) {
    result.prefetch_enabled = true;
    result.prefetch_algo = predict::algo_name(config.predictor.algo);
    result.predictor = predictor->stats();
  }
  // Shard 0's monitor stands in for the final burn-rate posture (each
  // shard evaluates only its own traffic; the scrape body carries all).
  result.slo = fe.shard(0).slo().evaluate(fe.shard(0).elapsed_us());

  if (!config.trace_out.empty()) {
    std::ofstream out(config.trace_out, std::ios::trunc);
    for (const obs::LiveSpan& span : result.spans) {
      obs::write_live_span_json(out, span);
      out << '\n';
    }
  }

  result.registry = build_sharded_registry(fe, worker_ptrs, predictor.get(),
                                           &result.load, &router_ptrs);
  return result;
}

}  // namespace prord::scale
