// ShardedFrontend: N distributor shards on one client port.
//
// Preferred path: every shard binds its own SO_REUSEPORT listener on the
// shared port and the kernel spreads incoming connections across them
// (probed at runtime — see net::reuseport_supported). Fallback path:
// shard 0 owns the only listener and round-robins accepted fds to its
// peers via Distributor::adopt_client (a clear warning, not a crash, so
// kernels without SO_REUSEPORT still run N shards).
//
// Each shard owns a private net::LiveRouter belief (its ShardRoutingCore)
// and the shards exchange load estimates through the lock-free
// LoadGossipBoard — no request ever takes a cross-shard lock. All shards
// share one run-wide monotonic clock (frontend t0) so gossip staleness
// decay is comparable across shards.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/distributor.h"
#include "net/live_cluster.h"
#include "scale/load_gossip.h"
#include "scale/shard_routing.h"

namespace prord::scale {

struct ShardedFrontendOptions {
  std::uint32_t shards = 1;
  std::uint16_t port = 0;  ///< shared client port; 0 = ephemeral
  /// Try SO_REUSEPORT first; off forces the accept-handoff fallback.
  bool allow_reuseport = true;
  int listen_backlog = 1024;
  GossipOptions gossip;
  net::DistributorObsOptions obs;  ///< applied to every shard
  /// Optional prediction seam, applied per shard with per-shard links.
  predict::IPredictor* predictor = nullptr;
  double prefetch_min_confidence = 0.4;
  std::size_t prefetch_fanout = 2;
};

class ShardedFrontend {
 public:
  /// `routers` holds one private LiveRouter per shard (same order);
  /// routers, site and workers are borrowed and must outlive this.
  ShardedFrontend(std::vector<net::LiveRouter*> routers,
                  const net::SiteStore& site,
                  std::vector<net::BackendWorker*> workers,
                  ShardedFrontendOptions options);
  ~ShardedFrontend();
  ShardedFrontend(const ShardedFrontend&) = delete;
  ShardedFrontend& operator=(const ShardedFrontend&) = delete;

  /// Per-shard /metrics and /slo body factories, installed on each shard
  /// before its thread starts (so no unsynchronized provider swap races
  /// a scrape). Each factory is called once per shard with the shard id
  /// and returns that shard's provider closure. Must precede start().
  void set_providers(
      std::function<std::function<std::string()>(std::uint32_t)> metrics,
      std::function<std::function<std::string()>(std::uint32_t)> slo) {
    metrics_factory_ = std::move(metrics);
    slo_factory_ = std::move(slo);
  }

  /// Binds listeners, wires shards, starts every distributor thread.
  /// False on any setup failure (already-started shards are stopped).
  bool start();
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  std::uint32_t shards() const noexcept { return opts_.shards; }
  bool reuseport_used() const noexcept { return reuseport_used_; }
  /// Non-empty when start() fell back from SO_REUSEPORT to handoff mode.
  const std::string& fallback_reason() const noexcept {
    return fallback_reason_;
  }

  net::Distributor& shard(std::uint32_t i) { return *dists_[i]; }
  const net::Distributor& shard(std::uint32_t i) const { return *dists_[i]; }
  const LoadGossipBoard& board() const noexcept { return *board_; }

  /// Microseconds since start() on the clock every shard's gossip uses.
  std::int64_t elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

  /// Per-shard consolidated counters. Safe while live for the atomic
  /// distributor counters; the routed/gossip fields read the shard's
  /// non-atomic state and are only exact after stop().
  net::LiveShardSnapshot snapshot(std::uint32_t i) const;

 private:
  std::vector<net::LiveRouter*> routers_;
  const net::SiteStore& site_;
  std::vector<net::BackendWorker*> workers_;
  ShardedFrontendOptions opts_;

  std::function<std::function<std::string()>(std::uint32_t)> metrics_factory_;
  std::function<std::function<std::string()>(std::uint32_t)> slo_factory_;

  std::unique_ptr<LoadGossipBoard> board_;
  std::vector<std::unique_ptr<ShardRoutingCore>> cores_;
  std::vector<std::unique_ptr<net::Distributor>> dists_;
  std::uint16_t port_ = 0;
  bool reuseport_used_ = false;
  std::string fallback_reason_;
  bool started_ = false;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace prord::scale
