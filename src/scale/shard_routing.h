// ShardRoutingCore: one distributor shard's private routing belief plus
// its side of the load-gossip exchange.
//
// Each shard owns a full net::LiveRouter (policy, belief cluster, LARD
// owner tables, PRORD placement view) and never shares it. What *is*
// shared is a LoadGossipBoard slot per shard: tick() — called from the
// shard's event loop — publishes this shard's local in-flight counts and
// merges every peer's latest snapshot into the belief cluster via
// BackendServer::set_external_load. Policies keep reading plain load();
// they cannot tell gossip from local traffic, which is exactly the
// partial-view decider model the multi-cache paging papers formalize.
#pragma once

#include <cstdint>

#include "net/live_router.h"
#include "scale/load_gossip.h"

namespace prord::scale {

/// Per-shard gossip counters, read after the shard thread has stopped
/// (or from the shard thread itself).
struct ShardGossipStats {
  std::uint64_t publishes = 0;
  std::uint64_t merges = 0;        // merge passes applied to belief
  std::uint64_t peers_merged = 0;  // cumulative peer snapshots folded in
  std::uint64_t peers_skipped = 0; // unpublished or torn peer reads
};

class ShardRoutingCore {
 public:
  /// `board` is shared by all shards and must outlive this object;
  /// `router` is this shard's private belief and must be driven only from
  /// the shard thread.
  ShardRoutingCore(std::uint32_t shard, LoadGossipBoard& board,
                   net::LiveRouter& router, GossipOptions options);

  /// Event-loop hook: on gossip cadence, publish our local snapshot and
  /// fold the peers' into belief. `now_us` is the run-wide monotonic
  /// clock all shards share. Cheap no-op between intervals.
  void tick(std::int64_t now_us);

  /// Unconditional publish (used for the final flush before teardown so
  /// post-run aggregation sees every shard's last counters).
  void publish_now(std::int64_t now_us);

  std::uint32_t shard() const noexcept { return shard_; }
  const ShardGossipStats& stats() const noexcept { return stats_; }
  const GossipOptions& options() const noexcept { return options_; }

 private:
  void merge_now(std::int64_t now_us);

  std::uint32_t shard_;
  LoadGossipBoard& board_;
  net::LiveRouter& router_;
  GossipOptions options_;
  std::int64_t next_gossip_us_ = 0;
  std::uint64_t version_ = 0;
  ShardGossipStats stats_;
};

}  // namespace prord::scale
