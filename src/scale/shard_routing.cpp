#include "scale/shard_routing.h"

namespace prord::scale {

ShardRoutingCore::ShardRoutingCore(std::uint32_t shard,
                                   LoadGossipBoard& board,
                                   net::LiveRouter& router,
                                   GossipOptions options)
    : shard_(shard), board_(board), router_(router), options_(options) {
  if (options_.interval_us <= 0) options_.interval_us = 1;
  if (options_.staleness_us <= 0) options_.staleness_us = 1;
}

void ShardRoutingCore::tick(std::int64_t now_us) {
  if (now_us < next_gossip_us_) return;
  next_gossip_us_ = now_us + options_.interval_us;
  publish_now(now_us);
  merge_now(now_us);
}

void ShardRoutingCore::publish_now(std::int64_t now_us) {
  ShardLoadSnapshot snap;
  snap.shard = shard_;
  snap.version = ++version_;
  snap.published_us = now_us;
  cluster::Cluster& cluster = router_.cluster();
  snap.backends = cluster.size() < kMaxGossipBackends ? cluster.size()
                                                      : kMaxGossipBackends;
  for (std::uint32_t b = 0; b < snap.backends; ++b)
    snap.inflight[b] = cluster.backend(b).local_load();
  const core::RoutingCore& core = router_.core();
  snap.routed = core.routed();
  snap.dispatches = core.dispatches();
  snap.handoffs = core.handoffs();
  snap.forwards = core.forwards();
  board_.publish(shard_, snap);
  ++stats_.publishes;
}

void ShardRoutingCore::merge_now(std::int64_t now_us) {
  cluster::Cluster& cluster = router_.cluster();
  const std::uint32_t backends = cluster.size() < kMaxGossipBackends
                                     ? cluster.size()
                                     : kMaxGossipBackends;
  std::uint32_t skipped = 0;
  const std::array<std::uint32_t, kMaxGossipBackends> external =
      board_.merged_external(shard_, backends, now_us, options_, &skipped);
  for (std::uint32_t b = 0; b < backends; ++b)
    cluster.backend(b).set_external_load(external[b]);
  ++stats_.merges;
  stats_.peers_skipped += skipped;
  stats_.peers_merged += board_.shards() - 1 - skipped;
}

}  // namespace prord::scale
