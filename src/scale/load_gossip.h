// Lock-free load gossip between front-end distributor shards.
//
// Each shard periodically publishes a fixed-size snapshot of its *local*
// view — per-backend in-flight counts plus its routing-core commit
// counters — and reads every peer's latest snapshot to recompute the
// "external load" it folds into its belief model. No request ever takes a
// cross-shard lock: publication reuses the double-buffer idea from
// adapt::ModelSwap, but with the mutex replaced by a per-slot seqlock
// whose payload is stored as relaxed std::atomic words, so concurrent
// publish/read is race-free by construction (and clean under TSan, which
// would rightly flag a plain-memcpy seqlock).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

namespace prord::scale {

/// Fixed upper bound on backends carried in a gossip snapshot. Snapshots
/// are fixed-layout atomic word arrays, so this is a hard compile-time
/// cap; the paper's cluster is 8 nodes and the live harness tops out well
/// below this.
inline constexpr std::uint32_t kMaxGossipBackends = 32;

/// One shard's published view. `version` starts at 1 on first publish
/// (0 == never published); `published_us` is on the run-wide monotonic
/// clock shared by all shards so readers can age-decay it.
struct ShardLoadSnapshot {
  std::uint32_t shard = 0;
  std::uint32_t backends = 0;
  std::uint64_t version = 0;
  std::int64_t published_us = 0;
  /// Requests this shard alone has in flight per backend (local_load(),
  /// never the merged load — see BackendServer::local_load).
  std::array<std::uint32_t, kMaxGossipBackends> inflight{};
  // Routing-core commit counters, carried so the /metrics aggregator can
  // report per-shard routing totals without touching another shard's
  // (non-atomic) RoutingCore.
  std::uint64_t routed = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t forwards = 0;
};

/// Gossip cadence and staleness horizon.
struct GossipOptions {
  /// How often each shard publishes + merges (checked on its event-loop
  /// tick, so the effective floor is the epoll timeout).
  std::int64_t interval_us = 2000;
  /// Snapshots older than this contribute nothing; younger ones are
  /// linearly decayed (see gossip_decay_num). Should be a small multiple
  /// of interval_us: long enough to ride out a busy peer's late publish,
  /// short enough that a stalled shard's claimed load drains away.
  std::int64_t staleness_us = 100000;
};

/// Linear staleness decay, as an integer numerator over `staleness_us`:
/// returns staleness_us at age 0, 0 at age >= staleness_us, decreasing
/// monotonically in between. Integer so that merged loads are exactly
/// order-independent (no float association effects).
inline std::int64_t gossip_decay_num(std::int64_t age_us,
                                     std::int64_t staleness_us) noexcept {
  if (age_us < 0) age_us = 0;  // peer clock read raced ahead of ours
  return age_us >= staleness_us ? 0 : staleness_us - age_us;
}

/// Recomputes the external (peer-shard) load per backend from a set of
/// snapshots: for every snapshot not from `self_shard` and published
/// (version > 0), adds inflight * decay / staleness. Pure function of its
/// inputs — idempotent (same inputs, same output) and order-independent
/// (integer sum over snapshots).
std::array<std::uint32_t, kMaxGossipBackends> merge_external_load(
    std::span<const ShardLoadSnapshot> snapshots, std::uint32_t self_shard,
    std::uint32_t backends, std::int64_t now_us, const GossipOptions& options);

/// One seqlocked double-buffered slot per shard. Exactly one writer per
/// slot (the owning shard's event-loop thread); any thread may read any
/// slot. publish() is wait-free; read() retries only if it races a
/// publish to the same buffer (the writer alternates buffers, so a reader
/// loses at most against two back-to-back publishes).
class LoadGossipBoard {
 public:
  explicit LoadGossipBoard(std::uint32_t shards);

  std::uint32_t shards() const noexcept { return shards_; }

  /// Publishes `snap` to `shard`'s slot. Caller must be the slot's single
  /// writer. snap.version must increase monotonically per shard.
  void publish(std::uint32_t shard, const ShardLoadSnapshot& snap) noexcept;

  /// Loads the latest consistent snapshot of `shard`'s slot into `out`.
  /// Returns false if the shard never published or the read kept tearing
  /// (bounded retries; the caller just uses its previous merge).
  bool read(std::uint32_t shard, ShardLoadSnapshot& out) const noexcept;

  /// read() over all slots except `self_shard`, then merge_external_load.
  /// `torn` (optional) counts slots skipped due to read failure.
  std::array<std::uint32_t, kMaxGossipBackends> merged_external(
      std::uint32_t self_shard, std::uint32_t backends, std::int64_t now_us,
      const GossipOptions& options, std::uint32_t* torn = nullptr) const;

 private:
  // Snapshot encoded as 64-bit words: header (shard, backends, version,
  // published_us), 32 inflight words, 4 counter words.
  static constexpr std::size_t kHeaderWords = 4;
  static constexpr std::size_t kCounterWords = 4;
  static constexpr std::size_t kWords =
      kHeaderWords + kMaxGossipBackends + kCounterWords;

  struct Buffer {
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };
  struct Slot {
    std::atomic<std::uint32_t> active{0};
    Buffer buffers[2];
  };

  std::unique_ptr<Slot[]> slots_;
  std::uint32_t shards_;
};

}  // namespace prord::scale
