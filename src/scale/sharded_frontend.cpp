#include "scale/sharded_frontend.h"

#include <cstdio>
#include <utility>

namespace prord::scale {

ShardedFrontend::ShardedFrontend(std::vector<net::LiveRouter*> routers,
                                 const net::SiteStore& site,
                                 std::vector<net::BackendWorker*> workers,
                                 ShardedFrontendOptions options)
    : routers_(std::move(routers)),
      site_(site),
      workers_(std::move(workers)),
      opts_(std::move(options)) {
  if (opts_.shards == 0) opts_.shards = 1;
  if (opts_.shards > routers_.size())
    opts_.shards = static_cast<std::uint32_t>(routers_.size());
}

ShardedFrontend::~ShardedFrontend() { stop(); }

bool ShardedFrontend::start() {
  if (started_) return true;
  const std::uint32_t n = opts_.shards;

  // --- Listener strategy. ---
  bool want_reuseport = opts_.allow_reuseport && n > 1;
  if (want_reuseport && !net::reuseport_supported()) {
    fallback_reason_ = "SO_REUSEPORT not supported by this kernel";
    std::fprintf(stderr,
                 "prord-scale: warning: %s; falling back to single-listener "
                 "accept handoff across %u shards\n",
                 fallback_reason_.c_str(), n);
    want_reuseport = false;
  }

  port_ = opts_.port;
  std::vector<net::Fd> listeners(n);
  net::ListenOptions lo;
  lo.backlog = opts_.listen_backlog;
  if (want_reuseport) {
    lo.reuseport = true;
    for (std::uint32_t s = 0; s < n; ++s) {
      // The first bind resolves an ephemeral port; the rest join it.
      listeners[s] = net::listen_loopback(port_, lo);
      if (!listeners[s]) return false;
    }
    reuseport_used_ = true;
  } else {
    // Single listener on shard 0; peers get their connections handed off.
    if (n > 1 && opts_.allow_reuseport == false)
      fallback_reason_ = "SO_REUSEPORT disabled by configuration";
    listeners[0] = net::listen_loopback(port_, lo);
    if (!listeners[0]) return false;
    reuseport_used_ = false;
  }

  // --- Gossip board + shards. ---
  board_ = std::make_unique<LoadGossipBoard>(n);
  t0_ = std::chrono::steady_clock::now();
  cores_.clear();
  dists_.clear();
  for (std::uint32_t s = 0; s < n; ++s) {
    dists_.push_back(std::make_unique<net::Distributor>(
        *routers_[s], site_, workers_, port_));
  }
  std::vector<net::Distributor*> peers;
  if (!reuseport_used_ && n > 1) {
    peers.reserve(n);
    for (auto& d : dists_) peers.push_back(d.get());
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    cores_.push_back(std::make_unique<ShardRoutingCore>(
        s, *board_, *routers_[s], opts_.gossip));
    net::DistributorShardOptions shard;
    shard.shard_id = s;
    shard.num_shards = n;
    shard.listen = std::move(listeners[s]);
    if (s == 0) shard.handoff_peers = peers;
    if (n > 1) {
      // All shards tick on the frontend clock, so staleness decay
      // compares timestamps from one timeline.
      ShardRoutingCore* core = cores_.back().get();
      shard.tick = [this, core](std::int64_t) { core->tick(elapsed_us()); };
    }
    dists_[s]->configure_shard(std::move(shard));
    dists_[s]->configure_obs(opts_.obs);
    if (opts_.predictor != nullptr) {
      dists_[s]->set_predictor(opts_.predictor, opts_.prefetch_min_confidence,
                               opts_.prefetch_fanout);
    }
    if (metrics_factory_) dists_[s]->set_metrics_provider(metrics_factory_(s));
    if (slo_factory_) dists_[s]->set_slo_provider(slo_factory_(s));
  }

  for (std::uint32_t s = 0; s < n; ++s) {
    if (!dists_[s]->start()) {
      for (std::uint32_t k = 0; k < s; ++k) dists_[k]->stop();
      dists_.clear();
      cores_.clear();
      return false;
    }
  }
  started_ = true;
  return true;
}

void ShardedFrontend::stop() {
  if (!started_) return;
  for (auto& d : dists_) d->stop();
  started_ = false;
}

net::LiveShardSnapshot ShardedFrontend::snapshot(std::uint32_t i) const {
  net::LiveShardSnapshot snap;
  snap.shard = i;
  const auto& c = dists_[i]->counters();
  snap.requests = c.requests.load();
  snap.responses = c.responses.load();
  snap.failures = c.failures.load();
  snap.not_found = c.not_found.load();
  snap.accepts = c.accepts.load();
  snap.adopted = c.adopted.load();
  snap.trace_spans = c.trace_spans.load();
  snap.slo_violations = c.slo_violations.load();
  snap.routed = routers_[i]->core().routed();
  if (i < cores_.size() && cores_[i]) {
    const ShardGossipStats& g = cores_[i]->stats();
    snap.gossip_publishes = g.publishes;
    snap.gossip_merges = g.merges;
    snap.gossip_peers_skipped = g.peers_skipped;
  }
  return snap;
}

}  // namespace prord::scale
