// Reader/writer for the 1998 World Cup web trace binary format.
//
// The trace the paper evaluates on is public (ITA, "WorldCup98"): 20-byte
// fixed records, all fields big-endian:
//
//     uint32 timestamp   seconds since the Unix epoch
//     uint32 clientID    pre-anonymized client identifier
//     uint32 objectID    unique id per distinct URL
//     uint32 size        response bytes
//     uint8  method      GET=0, HEAD=1, POST=2, ...
//     uint8  status      top 2 bits: HTTP version; low 6 bits: status index
//     uint8  type        file-type class (HTML=0, IMAGE=1, ...)
//     uint8  server      serving region/site
//
// `to_log_records` converts to the library's LogRecord model: URLs are
// synthesized from (objectID, type) — the original URL strings were
// removed during anonymization, so "/obj<id>.<ext>" preserves exactly the
// information the policies can use (identity + content class + size).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "trace/log_record.h"

namespace prord::trace {

struct WorldCupRecord {
  std::uint32_t timestamp = 0;
  std::uint32_t client_id = 0;
  std::uint32_t object_id = 0;
  std::uint32_t size = 0;
  std::uint8_t method = 0;
  std::uint8_t status = 0;
  std::uint8_t type = 0;
  std::uint8_t server = 0;
};

/// Method codes (checklog.c of the trace tools).
enum class WcMethod : std::uint8_t { kGet = 0, kHead, kPost, kPut, kOther };

/// File-type classes.
enum class WcType : std::uint8_t {
  kHtml = 0,
  kImage,
  kAudio,
  kVideo,
  kJava,
  kFormatted,
  kDynamic,
  kText,
  kCompressed,
  kPrograms,
  kDirectory,
  kIcl,
  kOther
};

/// Decodes the low 6 bits of the status byte to an HTTP status code
/// (e.g. 2 -> 200, 8 -> 404). Unknown indexes map to 0.
std::uint16_t wc_status_code(std::uint8_t status_byte);

/// Reads all records from a binary stream. Stops at EOF; a trailing
/// partial record is ignored (and reported via `truncated`, if given).
std::vector<WorldCupRecord> read_worldcup_records(std::istream& in,
                                                  bool* truncated = nullptr);

/// Writes records in the trace's binary layout (for tests and for
/// generating format-compatible synthetic traces).
void write_worldcup_records(std::ostream& out,
                            std::span<const WorldCupRecord> records);

/// Converts to LogRecords: times are rebased to the first record,
/// successful statuses preserved, URLs synthesized as
/// "/obj<objectID><ext-of-type>". Non-GET requests are kept (the workload
/// builder filters by status, not method).
std::vector<LogRecord> to_log_records(std::span<const WorldCupRecord> records);

/// Extension chosen for a file-type class when synthesizing URLs.
const char* wc_type_extension(WcType type);

}  // namespace prord::trace
