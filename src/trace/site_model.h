// Synthetic website model.
//
// A site is a directed graph of *main pages* (HTML documents) plus the
// embedded objects (images, applets, stylesheets, ...) each page pulls in.
// User populations are split into groups (Section 3.1 of the paper: a
// university site serves current students, prospective students, faculty,
// staff, others); each group has its own entry points and a navigation
// affinity per page, which yields the "highly directional and mostly
// unique access pattern" the mining exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace prord::trace {

/// Index of a page within SiteModel::pages().
using PageIndex = std::uint32_t;

struct EmbeddedObject {
  std::string url;
  std::uint32_t bytes = 0;
};

struct Page {
  std::string url;
  std::uint32_t bytes = 0;
  std::vector<PageIndex> links;          ///< outgoing hyperlinks
  std::vector<EmbeddedObject> embedded;  ///< objects fetched with the page
  std::uint32_t section = 0;             ///< site section (category) index
  double weight = 1.0;  ///< intrinsic popularity (Zipf); biases navigation
  /// Dynamic (CGI-style) page: generated per request on the back-end CPU
  /// and never cacheable. The paper lists dynamic-content support as
  /// future work; the model carries it so the extension bench can study it.
  bool is_dynamic = false;
};

struct UserGroup {
  std::string name;
  double weight = 1.0;                 ///< share of sessions from this group
  std::vector<double> entry_weights;   ///< per-page session entry weights
  std::vector<double> page_affinity;   ///< per-page link-choice multiplier
};

/// Immutable site description shared by the generator and by tests.
class SiteModel {
 public:
  SiteModel(std::vector<Page> pages, std::vector<UserGroup> groups,
            std::uint32_t num_sections);

  const std::vector<Page>& pages() const noexcept { return pages_; }
  const std::vector<UserGroup>& groups() const noexcept { return groups_; }
  std::uint32_t num_sections() const noexcept { return num_sections_; }

  /// Total count of distinct files (pages + embedded objects).
  std::size_t num_files() const noexcept { return num_files_; }

  /// Sum of all file sizes: the full website footprint.
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  /// Mean number of requests one page view produces (1 + embedded count),
  /// averaged over pages.
  double mean_requests_per_view() const noexcept;

 private:
  std::vector<Page> pages_;
  std::vector<UserGroup> groups_;
  std::uint32_t num_sections_;
  std::size_t num_files_;
  std::uint64_t total_bytes_;
};

/// Parameters for the hierarchical site builder.
struct SiteBuildParams {
  std::uint32_t sections = 5;          ///< top-level categories
  std::uint32_t pages_per_section = 40;
  double mean_page_bytes = 8 * 1024;
  double page_size_cv = 1.5;           ///< lognormal coefficient of variation
  double mean_embedded = 4.0;          ///< embedded objects per page (geometric)
  double mean_embedded_bytes = 6 * 1024;
  double embedded_size_cv = 2.0;
  double cross_section_link_prob = 0.15;
  std::uint32_t links_per_page = 6;
  double entry_zipf_alpha = 1.0;       ///< skew of entry-page popularity
  /// Fraction of content pages that are dynamic (".cgi", uncacheable).
  double dynamic_page_fraction = 0.0;
  std::uint32_t num_groups = 5;
  double group_affinity = 8.0;         ///< in-section link preference factor
  std::uint64_t seed = 42;
};

/// Builds a hierarchical site: one root index page, one index per section,
/// content pages linked index->page, page->siblings, page->cross-section.
/// Group g prefers sections {g mod sections} (affinity multiplier).
SiteModel build_site(const SiteBuildParams& params);

}  // namespace prord::trace
