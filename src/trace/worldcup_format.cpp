#include "trace/worldcup_format.h"

#include <array>
#include <istream>
#include <ostream>
#include <string>

namespace prord::trace {
namespace {

constexpr std::size_t kRecordBytes = 20;

// Status-index table from the trace's checklog tools.
constexpr std::array<std::uint16_t, 36> kStatusCodes{
    100, 101, 200, 201, 202, 203, 204, 205, 206, 300, 301, 302,
    303, 304, 305, 400, 401, 402, 403, 404, 405, 406, 407, 408,
    409, 410, 411, 412, 413, 414, 415, 500, 501, 502, 503, 504};

std::uint32_t read_be32(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void write_be32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v >> 24);
  p[1] = static_cast<unsigned char>(v >> 16);
  p[2] = static_cast<unsigned char>(v >> 8);
  p[3] = static_cast<unsigned char>(v);
}

}  // namespace

std::uint16_t wc_status_code(std::uint8_t status_byte) {
  const std::uint8_t index = status_byte & 0x3F;
  if (index >= kStatusCodes.size()) return 0;
  return kStatusCodes[index];
}

const char* wc_type_extension(WcType type) {
  switch (type) {
    case WcType::kHtml:
      return ".html";
    case WcType::kImage:
      return ".gif";
    case WcType::kAudio:
      return ".wav";
    case WcType::kVideo:
      return ".avi";
    case WcType::kJava:
      return ".class";
    case WcType::kFormatted:
      return ".pdf";
    case WcType::kDynamic:
      return ".cgi";
    case WcType::kText:
      return ".txt";
    case WcType::kCompressed:
      return ".zip";
    case WcType::kPrograms:
      return ".exe";
    case WcType::kDirectory:
      return "/";
    case WcType::kIcl:
      return ".icl";
    case WcType::kOther:
      break;
  }
  return ".dat";
}

std::vector<WorldCupRecord> read_worldcup_records(std::istream& in,
                                                  bool* truncated) {
  std::vector<WorldCupRecord> out;
  if (truncated) *truncated = false;
  unsigned char buf[kRecordBytes];
  while (in.read(reinterpret_cast<char*>(buf), kRecordBytes)) {
    WorldCupRecord r;
    r.timestamp = read_be32(buf);
    r.client_id = read_be32(buf + 4);
    r.object_id = read_be32(buf + 8);
    r.size = read_be32(buf + 12);
    r.method = buf[16];
    r.status = buf[17];
    r.type = buf[18];
    r.server = buf[19];
    out.push_back(r);
  }
  if (truncated && in.gcount() > 0) *truncated = true;
  return out;
}

void write_worldcup_records(std::ostream& out,
                            std::span<const WorldCupRecord> records) {
  unsigned char buf[kRecordBytes];
  for (const auto& r : records) {
    write_be32(buf, r.timestamp);
    write_be32(buf + 4, r.client_id);
    write_be32(buf + 8, r.object_id);
    write_be32(buf + 12, r.size);
    buf[16] = r.method;
    buf[17] = r.status;
    buf[18] = r.type;
    buf[19] = r.server;
    out.write(reinterpret_cast<const char*>(buf), kRecordBytes);
  }
}

std::vector<LogRecord> to_log_records(
    std::span<const WorldCupRecord> records) {
  std::vector<LogRecord> out;
  out.reserve(records.size());
  if (records.empty()) return out;
  const std::uint32_t base = records.front().timestamp;
  for (const auto& r : records) {
    LogRecord rec;
    rec.time = sim::sec(static_cast<double>(r.timestamp - base));
    rec.client = r.client_id;
    const auto type = static_cast<WcType>(
        r.type < static_cast<std::uint8_t>(WcType::kOther)
            ? r.type
            : static_cast<std::uint8_t>(WcType::kOther));
    rec.url = "/obj" + std::to_string(r.object_id) + wc_type_extension(type);
    rec.bytes = r.size;
    rec.status = wc_status_code(r.status);
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace prord::trace
