// Core trace data model.
//
// A trace is a time-ordered sequence of `LogRecord`s — one HTTP request
// each — exactly the information a Common Log Format server log carries.
// Both parsed real logs and the synthetic generators produce this type, so
// every policy and mining component downstream is trace-source agnostic.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/sim_time.h"

namespace prord::trace {

/// Dense file identifier assigned by FileTable::intern.
using FileId = std::uint32_t;
inline constexpr FileId kInvalidFile = 0xFFFFFFFFu;

/// One request line from a web-server access log.
struct LogRecord {
  sim::SimTime time = 0;     ///< microseconds since trace start
  std::uint32_t client = 0;  ///< dense client (host) id
  std::string url;           ///< request path, e.g. "/grad/admissions.html"
  std::uint32_t bytes = 0;   ///< response body size
  std::uint16_t status = 200;

  /// 2xx only: redirects/not-modified carry no body and are not served
  /// from the file set, so the simulator drops them by default.
  bool ok() const noexcept { return status >= 200 && status < 300; }
};

}  // namespace prord::trace
