// Workload construction: turns a raw LogRecord stream into the request
// stream the cluster simulator consumes.
//
// Responsibilities:
//   - intern URLs into dense FileIds and learn file sizes,
//   - classify requests as main pages vs embedded objects (by extension,
//     the same heuristic real front-ends use),
//   - attribute each embedded object to the main page that pulled it in,
//   - split each client's request stream into persistent HTTP/1.1
//     connections using a keep-alive timeout.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/log_record.h"

namespace prord::trace {

/// Dense URL <-> FileId mapping with byte sizes.
class FileTable {
 public:
  /// Returns the id for `url`, creating it on first sight. Size is updated
  /// to the max observed (logs may carry truncated transfers).
  FileId intern(std::string_view url, std::uint32_t bytes);

  /// Id for a known URL or kInvalidFile.
  FileId lookup(std::string_view url) const;

  std::uint32_t size_bytes(FileId id) const { return sizes_.at(id); }
  const std::string& url(FileId id) const { return urls_.at(id); }
  std::size_t count() const noexcept { return urls_.size(); }

  /// Sum of sizes over all known files — the site footprint as seen in the
  /// trace.
  std::uint64_t total_bytes() const noexcept;

 private:
  std::vector<std::string> urls_;
  std::vector<std::uint32_t> sizes_;
  std::unordered_map<std::string, FileId> ids_;
};

/// One request as the cluster front-end sees it.
struct Request {
  sim::SimTime at = 0;            ///< arrival at the front-end
  std::uint32_t client = 0;
  std::uint32_t conn = 0;         ///< persistent-connection id
  FileId file = kInvalidFile;
  std::uint32_t bytes = 0;
  bool is_embedded = false;
  bool is_dynamic = false;            ///< CPU-generated, uncacheable
  FileId parent_page = kInvalidFile;  ///< main page of an embedded object
  bool starts_connection = false;     ///< first request on its connection
};

struct WorkloadOptions {
  /// Requests from the same client separated by more than this ride on
  /// different persistent connections (typical server keep-alive).
  sim::SimTime keepalive_timeout = sim::sec(15.0);
  /// Embedded-object attribution window: an embedded request is bound to
  /// the client's most recent main page within this span.
  sim::SimTime bundle_window = sim::sec(10.0);
  /// Drop records with non-2xx/3xx status.
  bool keep_errors = false;
};

/// The simulator's input: interned requests plus the file universe.
struct Workload {
  FileTable files;
  std::vector<Request> requests;  ///< sorted by arrival time
  std::size_t num_connections = 0;
  std::size_t num_clients = 0;
  std::size_t num_main_pages = 0;  ///< count of main-page requests

  sim::SimTime span() const {
    return requests.empty() ? 0 : requests.back().at - requests.front().at;
  }
};

/// True if the URL looks like an embedded object (image/style/script/etc.).
bool is_embedded_url(std::string_view url);

/// True if the URL looks like dynamically generated content (CGI/script
/// extensions or a /cgi-bin/ path) — served from CPU, never cached.
bool is_dynamic_url(std::string_view url);

/// Builds a workload from a time-sorted record stream. `seed_table`, when
/// given, pre-populates the file table so ids stay consistent across
/// multiple traces of the same site (e.g. a training log mined offline and
/// the evaluation log played through the cluster).
Workload build_workload(std::span<const LogRecord> records,
                        const WorkloadOptions& options = {},
                        FileTable seed_table = {});

}  // namespace prord::trace
