// Common Log Format reader/writer.
//
// Format (one request per line):
//   host ident authuser [dd/Mon/yyyy:HH:MM:SS +ZZZZ] "METHOD /path HTTP/x.y" status bytes
//
// The simulator needs sub-second timing that CLF cannot carry, so the
// writer encodes microseconds since trace start in the `ident` field
// (which real logs leave as "-"); the reader uses that field when present
// and falls back to the 1-second-granularity timestamp otherwise. This
// keeps our files valid CLF for third-party tools while remaining lossless
// for round-trips.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/log_record.h"

namespace prord::trace {

/// Per-category accounting of rejected lines. Real logs are dirty —
/// truncated writes, proxy garbage in the request line, clock glitches —
/// so the parser skips and counts instead of failing, and the counts say
/// *why* data went missing.
struct ClfSkipCounts {
  std::uint64_t truncated = 0;       ///< too few fields / brackets absent
  std::uint64_t bad_timestamp = 0;   ///< [...] present but unparseable
  std::uint64_t missing_quotes = 0;  ///< request-line quotes absent
  std::uint64_t bad_request = 0;     ///< garbage method / URL / version
  std::uint64_t bad_status = 0;      ///< status outside 100..599
  std::uint64_t bad_bytes = 0;       ///< non-numeric bytes field
  std::uint64_t bad_escape = 0;      ///< malformed %XX percent-escape in URL
  /// URL is not an origin-form path and not a recoverable absolute-form
  /// URL — CONNECT host:port targets, OPTIONS *, or raw control bytes.
  std::uint64_t bad_url = 0;

  std::uint64_t total() const noexcept {
    return truncated + bad_timestamp + missing_quotes + bad_request +
           bad_status + bad_bytes + bad_escape + bad_url;
  }
};

/// Parses one CLF line. Returns nullopt on malformed input (counted by
/// category in skips(); empty/whitespace lines are ignored silently).
/// Host strings are mapped to dense client ids through `hosts` (appended
/// on first sighting).
class ClfParser {
 public:
  std::optional<LogRecord> parse_line(std::string_view line);

  /// Parses an entire stream, skipping malformed lines.
  std::vector<LogRecord> parse_stream(std::istream& in);

  /// Why rejected lines were rejected, across all parse calls.
  const ClfSkipCounts& skips() const noexcept { return skips_; }

  /// Total lines that failed to parse (sum over skips()).
  std::size_t malformed_lines() const noexcept {
    return static_cast<std::size_t>(skips_.total());
  }

  /// Host string for a client id produced by this parser.
  const std::string& host(std::uint32_t client) const {
    return hosts_.at(client);
  }
  std::size_t num_hosts() const noexcept { return hosts_.size(); }

 private:
  std::uint32_t intern_host(std::string_view host);

  std::vector<std::string> hosts_;
  std::unordered_map<std::string, std::uint32_t> host_ids_;
  ClfSkipCounts skips_;
  sim::SimTime first_epoch_us_ = -1;  // epoch of first record, for rebasing
};

/// Writes records as CLF lines. `client_name(c)` supplies the host field.
void write_clf(std::ostream& out, std::span<const LogRecord> records);

/// Parses "18/Jun/1998:00:00:12 +0000" to microseconds since Unix epoch.
/// A missing timezone suffix ("18/Jun/1998:00:00:12") is tolerated and
/// read as UTC — some embedded servers and log shippers drop it.
/// Returns nullopt on malformed input.
std::optional<std::int64_t> parse_clf_timestamp(std::string_view s);

/// Normalizes a request-line URL the way the parser does before interning:
/// strips an absolute-form scheme://host prefix down to its path, decodes
/// %XX percent-escapes (except %2F, %25 and control bytes, which keep
/// their escaped form so path structure and printability survive), and
/// preserves any query string. Returns nullopt when the URL is not a path
/// (CONNECT targets, "*") or carries a malformed escape; `*why` is set to
/// the ClfSkipCounts member name that should take the skip.
std::optional<std::string> normalize_clf_url(std::string_view url,
                                             const char** why = nullptr);

/// Formats microseconds since epoch as a CLF timestamp (UTC).
std::string format_clf_timestamp(std::int64_t epoch_us);

}  // namespace prord::trace
