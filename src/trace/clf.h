// Common Log Format reader/writer.
//
// Format (one request per line):
//   host ident authuser [dd/Mon/yyyy:HH:MM:SS +ZZZZ] "METHOD /path HTTP/x.y" status bytes
//
// The simulator needs sub-second timing that CLF cannot carry, so the
// writer encodes microseconds since trace start in the `ident` field
// (which real logs leave as "-"); the reader uses that field when present
// and falls back to the 1-second-granularity timestamp otherwise. This
// keeps our files valid CLF for third-party tools while remaining lossless
// for round-trips.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/log_record.h"

namespace prord::trace {

/// Parses one CLF line. Returns nullopt on malformed input. Host strings
/// are mapped to dense client ids through `hosts` (appended on first
/// sighting).
class ClfParser {
 public:
  std::optional<LogRecord> parse_line(std::string_view line);

  /// Parses an entire stream, skipping malformed lines.
  std::vector<LogRecord> parse_stream(std::istream& in);

  /// Number of lines that failed to parse in parse_stream calls.
  std::size_t malformed_lines() const noexcept { return malformed_; }

  /// Host string for a client id produced by this parser.
  const std::string& host(std::uint32_t client) const {
    return hosts_.at(client);
  }
  std::size_t num_hosts() const noexcept { return hosts_.size(); }

 private:
  std::uint32_t intern_host(std::string_view host);

  std::vector<std::string> hosts_;
  std::unordered_map<std::string, std::uint32_t> host_ids_;
  std::size_t malformed_ = 0;
  sim::SimTime first_epoch_us_ = -1;  // epoch of first record, for rebasing
};

/// Writes records as CLF lines. `client_name(c)` supplies the host field.
void write_clf(std::ostream& out, std::span<const LogRecord> records);

/// Parses "18/Jun/1998:00:00:12 +0000" to microseconds since Unix epoch.
/// Returns nullopt on malformed input.
std::optional<std::int64_t> parse_clf_timestamp(std::string_view s);

/// Formats microseconds since epoch as a CLF timestamp (UTC).
std::string format_clf_timestamp(std::int64_t epoch_us);

}  // namespace prord::trace
