// Trace characterization.
//
// Summarizes a request stream the way web-workload papers do: volume,
// file-population and byte statistics, popularity skew (a least-squares
// Zipf-alpha fit on the rank-frequency curve), session shape and the
// embedded/dynamic mix. The generators' tests use this to check that the
// synthetic stand-ins match the published shape of the paper's traces,
// and the trace_inspect example prints it for arbitrary CLF files.
#pragma once

#include <cstdint>
#include <span>

#include "trace/workload.h"

namespace prord::trace {

struct TraceStats {
  // Volume.
  std::size_t requests = 0;
  std::size_t distinct_files = 0;
  std::uint64_t total_bytes_transferred = 0;
  std::uint64_t footprint_bytes = 0;  ///< sum of distinct file sizes
  double mean_file_kb = 0.0;
  sim::SimTime span = 0;
  double mean_rps = 0.0;

  // Mix.
  std::size_t embedded_requests = 0;
  std::size_t dynamic_requests = 0;
  std::size_t connections = 0;
  std::size_t clients = 0;

  // Popularity.
  double zipf_alpha = 0.0;      ///< rank-frequency log-log slope (negated)
  double top10pct_share = 0.0;  ///< request share of the hottest 10% files
  std::size_t files_for_90pct = 0;  ///< #hottest files covering 90% requests

  double embedded_fraction() const {
    return requests ? static_cast<double>(embedded_requests) / requests : 0;
  }
};

/// Computes statistics over a built workload.
TraceStats characterize(const Workload& workload);

/// Fits a Zipf exponent to per-file request counts by least squares on
/// log(rank) vs log(count), using the top `max_ranks` ranks (the tail of a
/// finite trace flattens and would bias the fit). Returns 0 for fewer than
/// three distinct files.
double fit_zipf_alpha(std::span<const std::uint64_t> sorted_counts_desc,
                      std::size_t max_ranks = 100);

}  // namespace prord::trace
