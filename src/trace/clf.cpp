#include "trace/clf.h"

#include <array>
#include <cstdio>
#include <ctime>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/string_util.h"

namespace prord::trace {
namespace {

constexpr std::array<const char*, 12> kMonths{"Jan", "Feb", "Mar", "Apr",
                                              "May", "Jun", "Jul", "Aug",
                                              "Sep", "Oct", "Nov", "Dec"};

int month_index(std::string_view m) {
  for (std::size_t i = 0; i < kMonths.size(); ++i)
    if (m == kMonths[i]) return static_cast<int>(i);
  return -1;
}

// Days since 1970-01-01 for a Gregorian date (civil-from-days inverse,
// Howard Hinnant's algorithm).
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

std::optional<std::int64_t> parse_clf_timestamp(std::string_view s) {
  // dd/Mon/yyyy:HH:MM:SS [+ZZZZ] — the timezone is optional (read as UTC
  // when absent; some log shippers strip it).
  if (s.size() < 20) return std::nullopt;
  auto digits = [&](std::size_t pos, std::size_t n) -> std::optional<int> {
    int v = 0;
    for (std::size_t i = pos; i < pos + n; ++i) {
      if (s[i] < '0' || s[i] > '9') return std::nullopt;
      v = v * 10 + (s[i] - '0');
    }
    return v;
  };
  const auto day = digits(0, 2);
  const int mon = month_index(s.substr(3, 3));
  const auto year = digits(7, 4);
  const auto hh = digits(12, 2);
  const auto mm = digits(15, 2);
  const auto ss = digits(18, 2);
  if (!day || mon < 0 || !year || !hh || !mm || !ss) return std::nullopt;
  if (s[2] != '/' || s[6] != '/' || s[11] != ':' || s[14] != ':' ||
      s[17] != ':')
    return std::nullopt;
  // Field ranges: clock glitches produce digit salads that would otherwise
  // silently parse to nonsense epochs (:60 seconds allowed for leap seconds).
  if (*day < 1 || *day > 31 || *hh > 23 || *mm > 59 || *ss > 60)
    return std::nullopt;

  std::int64_t secs = days_from_civil(*year, mon + 1, *day) * 86400 +
                      *hh * 3600 + *mm * 60 + *ss;
  if (s.size() == 20) return secs * 1'000'000;  // timezone-less variant

  if (s.size() < 26 || s[20] != ' ') return std::nullopt;
  const char sign = s[21];
  const auto tz_h = digits(22, 2);
  const auto tz_m = digits(24, 2);
  if ((sign != '+' && sign != '-') || !tz_h || !tz_m) return std::nullopt;
  const std::int64_t offset = (*tz_h * 3600 + *tz_m * 60);
  secs += (sign == '+') ? -offset : offset;  // convert local to UTC
  return secs * 1'000'000;
}

std::optional<std::string> normalize_clf_url(std::string_view url,
                                             const char** why) {
  const char* scratch = nullptr;
  const char** reason = why ? why : &scratch;
  *reason = nullptr;

  // Absolute-form (proxy logs): scheme://host[:port]/path — keep the path.
  if (!url.starts_with('/')) {
    const auto sep = url.find("://");
    bool recovered = false;
    if (sep != std::string_view::npos && sep > 0) {
      const auto path = url.find('/', sep + 3);
      url = path == std::string_view::npos ? std::string_view("/")
                                           : url.substr(path);
      recovered = true;
    }
    if (!recovered) {  // CONNECT host:port, "*", or plain garbage
      *reason = "bad_url";
      return std::nullopt;
    }
  }

  std::string out;
  out.reserve(url.size());
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < url.size(); ++i) {
    const char c = url[i];
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7F) {
      *reason = "bad_url";  // raw control byte: binary junk, not a URL
      return std::nullopt;
    }
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= url.size()) {
      *reason = "bad_escape";
      return std::nullopt;
    }
    const int hi = hex(url[i + 1]), lo = hex(url[i + 2]);
    if (hi < 0 || lo < 0) {
      *reason = "bad_escape";
      return std::nullopt;
    }
    const char decoded = static_cast<char>(hi * 16 + lo);
    // '/', '%' and control bytes keep their escaped form: decoding them
    // would change path structure or inject unprintable bytes.
    if (decoded == '/' || decoded == '%' ||
        static_cast<unsigned char>(decoded) < 0x20 || decoded == 0x7F) {
      out.append(url.substr(i, 3));
    } else {
      out.push_back(decoded);
    }
    i += 2;
  }
  return out;
}

std::string format_clf_timestamp(std::int64_t epoch_us) {
  std::int64_t secs = epoch_us / 1'000'000;
  std::int64_t days = secs / 86400;
  std::int64_t rem = secs % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  int y, m, d;
  civil_from_days(days, y, m, d);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02d/%s/%04d:%02ld:%02ld:%02ld +0000", d,
                kMonths[m - 1], y, static_cast<long>(rem / 3600),
                static_cast<long>((rem / 60) % 60), static_cast<long>(rem % 60));
  return buf;
}

std::uint32_t ClfParser::intern_host(std::string_view host) {
  auto it = host_ids_.find(std::string(host));
  if (it != host_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(hosts_.size());
  hosts_.emplace_back(host);
  host_ids_.emplace(hosts_.back(), id);
  return id;
}

std::optional<LogRecord> ClfParser::parse_line(std::string_view line) {
  line = util::trim(line);
  if (line.empty()) return std::nullopt;
  auto reject = [](std::uint64_t& counter) -> std::optional<LogRecord> {
    ++counter;
    return std::nullopt;
  };

  // host ident authuser [timestamp] "request" status bytes
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return reject(skips_.truncated);
  const std::string_view host = line.substr(0, sp1);

  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return reject(skips_.truncated);
  const std::string_view ident = line.substr(sp1 + 1, sp2 - sp1 - 1);

  const std::size_t lb = line.find('[', sp2);
  const std::size_t rb = line.find(']', lb);
  if (lb == std::string_view::npos || rb == std::string_view::npos)
    return reject(skips_.truncated);
  const auto epoch = parse_clf_timestamp(line.substr(lb + 1, rb - lb - 1));
  if (!epoch) return reject(skips_.bad_timestamp);

  const std::size_t q1 = line.find('"', rb);
  if (q1 == std::string_view::npos) return reject(skips_.missing_quotes);
  const std::size_t q2 = line.find('"', q1 + 1);
  if (q2 == std::string_view::npos) return reject(skips_.missing_quotes);
  const std::string_view request = line.substr(q1 + 1, q2 - q1 - 1);

  const auto req_parts = util::split(request, ' ');
  if (req_parts.size() < 2) return reject(skips_.bad_request);
  // An HTTP method is a short uppercase token; anything else is proxy
  // garbage or a shifted field.
  const std::string_view method = req_parts[0];
  if (method.empty() || method.size() > 16) return reject(skips_.bad_request);
  for (const char c : method)
    if (c < 'A' || c > 'Z') return reject(skips_.bad_request);
  const std::string_view raw_url = req_parts[1];
  if (raw_url.empty()) return reject(skips_.bad_request);
  if (req_parts.size() >= 3 && !req_parts[2].starts_with("HTTP/"))
    return reject(skips_.bad_request);
  const char* url_why = nullptr;
  auto url = normalize_clf_url(raw_url, &url_why);
  if (!url) {
    return reject(url_why == std::string_view("bad_escape")
                      ? skips_.bad_escape
                      : skips_.bad_url);
  }

  const std::string_view tail = util::trim(line.substr(q2 + 1));
  const auto tail_parts = util::split(tail, ' ');
  if (tail_parts.size() < 2) return reject(skips_.truncated);
  std::uint64_t status = 0;
  if (!util::parse_u64(tail_parts[0], status) || status < 100 || status > 599)
    return reject(skips_.bad_status);
  std::uint64_t bytes = 0;
  if (tail_parts[1] != "-" && !util::parse_u64(tail_parts[1], bytes))
    return reject(skips_.bad_bytes);

  if (first_epoch_us_ < 0) first_epoch_us_ = *epoch;

  LogRecord rec;
  // Prefer the lossless microsecond offset our writer stores in `ident`.
  std::uint64_t ident_us = 0;
  if (ident != "-" && util::parse_u64(ident, ident_us))
    rec.time = static_cast<sim::SimTime>(ident_us);
  else
    rec.time = *epoch - first_epoch_us_;
  rec.client = intern_host(host);
  rec.url = std::move(*url);
  rec.status = static_cast<std::uint16_t>(status);
  rec.bytes = static_cast<std::uint32_t>(bytes);
  return rec;
}

std::vector<LogRecord> ClfParser::parse_stream(std::istream& in) {
  std::vector<LogRecord> out;
  std::string line;
  while (std::getline(in, line)) {
    if (util::trim(line).empty()) continue;
    // parse_line does the per-category skip accounting.
    if (auto rec = parse_line(line)) out.push_back(std::move(*rec));
  }
  return out;
}

void write_clf(std::ostream& out, std::span<const LogRecord> records) {
  // Synthetic traces are rebased at time 0; anchor them at an arbitrary
  // fixed epoch so the timestamp field is well-formed.
  constexpr std::int64_t kEpochBaseUs = 898'000'000LL * 1'000'000LL;  // 1998
  for (const auto& r : records) {
    out << "client" << r.client << ' ' << r.time << " - ["
        << format_clf_timestamp(kEpochBaseUs + r.time) << "] \"GET " << r.url
        << " HTTP/1.1\" " << r.status << ' ' << r.bytes << '\n';
  }
}

}  // namespace prord::trace
