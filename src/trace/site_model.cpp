#include "trace/site_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/distributions.h"

namespace prord::trace {

SiteModel::SiteModel(std::vector<Page> pages, std::vector<UserGroup> groups,
                     std::uint32_t num_sections)
    : pages_(std::move(pages)),
      groups_(std::move(groups)),
      num_sections_(num_sections) {
  if (pages_.empty()) throw std::invalid_argument("SiteModel: no pages");
  if (groups_.empty()) throw std::invalid_argument("SiteModel: no groups");
  num_files_ = 0;
  total_bytes_ = 0;
  for (const auto& p : pages_) {
    num_files_ += 1 + p.embedded.size();
    total_bytes_ += p.bytes;
    for (const auto& e : p.embedded) total_bytes_ += e.bytes;
    for (PageIndex l : p.links)
      if (l >= pages_.size())
        throw std::invalid_argument("SiteModel: dangling link");
  }
  for (const auto& g : groups_) {
    if (g.entry_weights.size() != pages_.size() ||
        g.page_affinity.size() != pages_.size())
      throw std::invalid_argument("SiteModel: group vectors wrong size");
  }
}

double SiteModel::mean_requests_per_view() const noexcept {
  double total = 0;
  for (const auto& p : pages_) total += 1.0 + static_cast<double>(p.embedded.size());
  return total / static_cast<double>(pages_.size());
}

SiteModel build_site(const SiteBuildParams& params) {
  if (params.sections == 0 || params.pages_per_section == 0)
    throw std::invalid_argument("build_site: empty site");
  util::Rng rng(params.seed);
  util::LogNormalDistribution page_size = util::LogNormalDistribution::from_mean_cv(
      params.mean_page_bytes, params.page_size_cv);
  util::LogNormalDistribution emb_size = util::LogNormalDistribution::from_mean_cv(
      params.mean_embedded_bytes, params.embedded_size_cv);

  std::vector<Page> pages;
  const std::uint32_t content_per_sec = params.pages_per_section;
  const std::uint32_t total_pages =
      1 + params.sections * (1 + content_per_sec);  // root + section indexes + content
  pages.reserve(total_pages);

  auto clamp_size = [](double v) {
    return static_cast<std::uint32_t>(std::clamp(v, 256.0, 8.0 * 1024 * 1024));
  };

  auto add_embedded = [&](Page& p) {
    // Geometric count with the requested mean; mean n => p = 1/(n+1) for a
    // count >= 0 (we allow pages with no embedded objects).
    const double mean = std::max(0.0, params.mean_embedded);
    std::size_t count = 0;
    if (mean > 0) {
      const double q = 1.0 / (mean + 1.0);
      count = util::sample_geometric(rng, q) - 1;
    }
    for (std::size_t i = 0; i < count; ++i) {
      EmbeddedObject e;
      e.url = p.url.substr(0, p.url.rfind('.')) + "_img" + std::to_string(i) +
              (i % 3 == 0 ? ".gif" : i % 3 == 1 ? ".jpg" : ".png");
      e.bytes = clamp_size(emb_size(rng));
      p.embedded.push_back(std::move(e));
    }
  };

  // Root index.
  {
    Page root;
    root.url = "/index.html";
    root.bytes = clamp_size(page_size(rng));
    root.section = 0;
    add_embedded(root);
    pages.push_back(std::move(root));
  }

  // Section indexes, then content pages.
  std::vector<PageIndex> section_index(params.sections);
  for (std::uint32_t s = 0; s < params.sections; ++s) {
    Page idx;
    idx.url = "/s" + std::to_string(s) + "/index.html";
    idx.bytes = clamp_size(page_size(rng));
    idx.section = s;
    add_embedded(idx);
    section_index[s] = static_cast<PageIndex>(pages.size());
    pages.push_back(std::move(idx));
  }
  std::vector<std::vector<PageIndex>> section_pages(params.sections);
  for (std::uint32_t s = 0; s < params.sections; ++s) {
    for (std::uint32_t i = 0; i < content_per_sec; ++i) {
      Page p;
      // Skip the draw entirely at fraction 0 so enabling the feature is
      // the only thing that perturbs the site's random stream.
      p.is_dynamic = params.dynamic_page_fraction > 0.0 &&
                     rng.bernoulli(params.dynamic_page_fraction);
      p.url = "/s" + std::to_string(s) + "/p" + std::to_string(i) +
              (p.is_dynamic ? ".cgi" : ".html");
      p.bytes = clamp_size(page_size(rng));
      p.section = s;
      add_embedded(p);
      section_pages[s].push_back(static_cast<PageIndex>(pages.size()));
      pages.push_back(std::move(p));
    }
  }

  // Wire links. Root -> all section indexes. Section index -> its pages
  // (bounded fan-out plus "next" chaining so deep pages are reachable).
  for (std::uint32_t s = 0; s < params.sections; ++s)
    pages[0].links.push_back(section_index[s]);

  for (std::uint32_t s = 0; s < params.sections; ++s) {
    auto& idx = pages[section_index[s]];
    const auto& members = section_pages[s];
    const std::uint32_t fanout =
        std::min<std::uint32_t>(params.links_per_page * 2,
                                static_cast<std::uint32_t>(members.size()));
    for (std::uint32_t i = 0; i < fanout; ++i) idx.links.push_back(members[i]);
    idx.links.push_back(0);  // back to root

    for (std::size_t i = 0; i < members.size(); ++i) {
      auto& p = pages[members[i]];
      p.links.push_back(section_index[s]);  // up to section index
      if (i + 1 < members.size()) p.links.push_back(members[i + 1]);  // next
      // A few random intra-section links.
      for (std::uint32_t k = 0; k < params.links_per_page; ++k) {
        if (rng.bernoulli(params.cross_section_link_prob) &&
            params.sections > 1) {
          std::uint32_t other = static_cast<std::uint32_t>(
              rng.below(params.sections));
          if (other == s) other = (other + 1) % params.sections;
          const auto& tgt = section_pages[other];
          p.links.push_back(tgt[rng.below(tgt.size())]);
        } else {
          p.links.push_back(members[rng.below(members.size())]);
        }
      }
      // Dedup links, keep order deterministic.
      std::vector<PageIndex> uniq;
      for (PageIndex l : p.links)
        if (l != members[i] &&
            std::find(uniq.begin(), uniq.end(), l) == uniq.end())
          uniq.push_back(l);
      p.links = std::move(uniq);
    }
  }

  // Intrinsic page popularity: Zipf over page index (root and section
  // indexes first, then content in creation order). Navigation is biased
  // toward popular pages, which yields the heavy-tailed per-file request
  // distribution real access logs show.
  util::ZipfDistribution entry_zipf(pages.size(), params.entry_zipf_alpha);
  for (std::size_t p = 0; p < pages.size(); ++p)
    pages[p].weight = entry_zipf.pmf(p);

  // Groups: group g prefers section g % sections; entries are Zipf over
  // pages reordered so each group's hot entry pages sit in its section.
  std::vector<UserGroup> groups;
  const std::uint32_t ngroups = std::max(1u, params.num_groups);
  for (std::uint32_t g = 0; g < ngroups; ++g) {
    UserGroup grp;
    grp.name = "group" + std::to_string(g);
    grp.weight = 1.0 / ngroups;
    grp.entry_weights.assign(pages.size(), 0.0);
    grp.page_affinity.assign(pages.size(), 1.0);
    const std::uint32_t home = g % params.sections;
    for (std::size_t p = 0; p < pages.size(); ++p) {
      const double zipf_w = entry_zipf.pmf(p % pages.size());
      const bool in_home = pages[p].section == home;
      grp.entry_weights[p] = zipf_w * (in_home ? params.group_affinity : 1.0);
      grp.page_affinity[p] = in_home ? params.group_affinity : 1.0;
    }
    // Root and section indexes are always plausible entries.
    grp.entry_weights[0] += 0.05;
    grp.entry_weights[section_index[home]] += 0.05;
    groups.push_back(std::move(grp));
  }

  return SiteModel(std::move(pages), std::move(groups), params.sections);
}

}  // namespace prord::trace
