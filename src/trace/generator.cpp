#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/distributions.h"

namespace prord::trace {

GeneratedTrace generate_trace(const SiteModel& site,
                              const TraceGenParams& params) {
  if (params.target_requests == 0)
    throw std::invalid_argument("generate_trace: target_requests == 0");
  util::Rng rng(params.seed);

  // Session arrival rate sized so expected request count over the duration
  // matches the target: lambda = target / (duration * reqs_per_session).
  const double reqs_per_session =
      params.mean_pages_per_session * site.mean_requests_per_view();
  const double lambda = static_cast<double>(params.target_requests) /
                        (params.duration_sec * reqs_per_session);
  util::ExponentialDistribution interarrival(lambda);
  util::ParetoDistribution think(params.think_alpha, params.think_lo_sec,
                                 params.think_hi_sec);

  std::vector<double> group_weights;
  group_weights.reserve(site.groups().size());
  for (const auto& g : site.groups()) group_weights.push_back(g.weight);
  util::DiscreteDistribution pick_group(group_weights);

  // Per-group entry distributions.
  std::vector<util::DiscreteDistribution> entry_dist;
  entry_dist.reserve(site.groups().size());
  for (const auto& g : site.groups())
    entry_dist.emplace_back(g.entry_weights);

  // Navigation weight per page: popularity ^ bias, precomputed.
  std::vector<double> nav_weight(site.pages().size());
  for (std::size_t p = 0; p < nav_weight.size(); ++p)
    nav_weight[p] = std::pow(site.pages()[p].weight, params.popularity_bias);

  GeneratedTrace out;
  out.records.reserve(params.target_requests + 64);

  // Workload drift: each phase cyclically re-maps the page-preference
  // indices — entry weights, navigation popularity, AND the groups' page
  // affinities rotate by the same shift — so the hot set and the favored
  // successor of each page both land on structurally different pages
  // while the link graph stays fixed. Rotating the affinities matters:
  // they multiply into every link choice, and leaving them static would
  // pin P(next | page) across phases, reducing "drift" to a popularity
  // reshuffle no predictor ever has to re-learn. A session samples its
  // phase once, at its start time (users mid-session don't switch
  // interests).
  const DriftSpec& drift = params.drift;
  if (drift.rotation < 0.0 || drift.rotation > 1.0)
    throw std::invalid_argument("generate_trace: drift.rotation in [0,1]");
  if (drift.flash_multiplier < 1.0)
    throw std::invalid_argument("generate_trace: drift.flash_multiplier >= 1");
  const bool drifting = drift.enabled();
  const std::size_t num_pages = site.pages().size();
  // nav weights / entry distributions per phase; phase 0 has shift 0 and
  // equals the undrifted tables.
  std::vector<std::vector<double>> nav_by_phase;
  std::vector<std::vector<util::DiscreteDistribution>> entry_by_phase;
  std::vector<std::vector<std::vector<double>>> affinity_by_phase;
  if (drifting) {
    nav_by_phase.reserve(drift.phases);
    entry_by_phase.reserve(drift.phases);
    affinity_by_phase.reserve(drift.phases);
    for (std::size_t p = 0; p < drift.phases; ++p) {
      const std::size_t shift =
          static_cast<std::size_t>(std::llround(
              static_cast<double>(p) * drift.rotation *
              static_cast<double>(num_pages))) %
          num_pages;
      std::vector<double> nav(num_pages);
      for (std::size_t l = 0; l < num_pages; ++l)
        nav[l] = nav_weight[(l + shift) % num_pages];
      nav_by_phase.push_back(std::move(nav));
      std::vector<util::DiscreteDistribution> dists;
      dists.reserve(site.groups().size());
      std::vector<std::vector<double>> affinities;
      affinities.reserve(site.groups().size());
      for (const auto& g : site.groups()) {
        std::vector<double> w(g.entry_weights.size());
        for (std::size_t l = 0; l < w.size(); ++l)
          w[l] = g.entry_weights[(l + shift) % w.size()];
        dists.emplace_back(w);
        std::vector<double> aff(num_pages);
        for (std::size_t l = 0; l < num_pages; ++l)
          aff[l] = g.page_affinity[(l + shift) % num_pages];
        affinities.push_back(std::move(aff));
      }
      entry_by_phase.push_back(std::move(dists));
      affinity_by_phase.push_back(std::move(affinities));
    }
  }
  const double phase_len = drift.phase_length(params.duration_sec);

  // Inhomogeneous session arrivals by thinning: candidates at the peak
  // rate, accepted with probability rate(t)/peak.
  if (params.diurnal_amplitude < 0.0 || params.diurnal_amplitude >= 1.0)
    throw std::invalid_argument("generate_trace: diurnal_amplitude in [0,1)");
  if (params.flash_multiplier < 1.0)
    throw std::invalid_argument("generate_trace: flash_multiplier >= 1");
  const bool phase_flash =
      drifting && drift.flash_multiplier > 1.0 && drift.flash_duration_sec > 0;
  const bool modulated = params.diurnal_amplitude > 0.0 ||
                         params.flash_multiplier > 1.0 || phase_flash;
  const double peak_factor = (1.0 + params.diurnal_amplitude) *
                             params.flash_multiplier *
                             (phase_flash ? drift.flash_multiplier : 1.0);
  util::ExponentialDistribution peak_interarrival(lambda * peak_factor);
  auto rate_factor = [&params, &drift, phase_flash, phase_len](double t) {
    double f = 1.0 + params.diurnal_amplitude *
                         std::sin(6.28318530717958647692 * t /
                                  params.diurnal_period_sec);
    if (params.flash_multiplier > 1.0 && t >= params.flash_start_sec &&
        t < params.flash_start_sec + params.flash_duration_sec)
      f *= params.flash_multiplier;
    if (phase_flash && t >= 0) {
      const double into_phase = t - phase_len * std::floor(t / phase_len);
      if (into_phase < drift.flash_duration_sec) f *= drift.flash_multiplier;
    }
    return f;
  };

  const double session_len_p = 1.0 / params.mean_pages_per_session;
  double session_start = 0.0;

  while (out.records.size() < params.target_requests) {
    if (modulated) {
      // Thinning loop: advance candidates until one is accepted.
      do {
        session_start += peak_interarrival(rng);
      } while (rng.uniform() >= rate_factor(session_start) / peak_factor);
    } else {
      session_start += interarrival(rng);
    }
    const auto group = static_cast<std::uint32_t>(pick_group(rng));
    const auto client = static_cast<std::uint32_t>(out.num_sessions);
    ++out.num_sessions;
    out.session_group.push_back(group);

    const std::size_t phase =
        drift.phase_of(session_start, params.duration_sec);
    const std::vector<double>& nav =
        drifting ? nav_by_phase[phase] : nav_weight;
    util::DiscreteDistribution& entry =
        drifting ? entry_by_phase[phase][group] : entry_dist[group];

    const std::size_t pages_to_view =
        util::sample_geometric(rng, session_len_p);
    PageIndex current = static_cast<PageIndex>(entry(rng));
    double t = session_start;

    for (std::size_t v = 0; v < pages_to_view; ++v) {
      const Page& page = site.pages()[current];
      ++out.num_page_views;

      LogRecord rec;
      rec.time = sim::sec(t);
      rec.client = client;
      rec.url = page.url;
      rec.bytes = page.bytes;
      out.records.push_back(rec);

      double et = t;
      for (const auto& e : page.embedded) {
        et += params.embedded_gap_ms / 1000.0;
        LogRecord er;
        er.time = sim::sec(et);
        er.client = client;
        er.url = e.url;
        er.bytes = e.bytes;
        out.records.push_back(er);
      }
      if (out.records.size() >= params.target_requests) break;

      if (page.links.empty()) break;  // dead end: session ends

      // Choose next link weighted by the group's (phase-rotated) affinity
      // and the target page's intrinsic popularity.
      const auto& affinity = drifting
                                 ? affinity_by_phase[phase][group]
                                 : site.groups()[group].page_affinity;
      double total = 0.0;
      for (PageIndex l : page.links) total += affinity[l] * nav[l];
      double u = rng.uniform() * total;
      PageIndex next = page.links.back();
      for (PageIndex l : page.links) {
        u -= affinity[l] * nav[l];
        if (u <= 0) {
          next = l;
          break;
        }
      }
      current = next;
      t = et + think(rng);
    }
  }

  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.time < b.time;
                   });
  return out;
}

}  // namespace prord::trace
