#include "trace/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

namespace prord::trace {

double fit_zipf_alpha(std::span<const std::uint64_t> sorted_counts_desc,
                      std::size_t max_ranks) {
  const std::size_t n = std::min(sorted_counts_desc.size(), max_ranks);
  if (n < 3) return 0.0;
  // Least squares on y = a + b*x with x = log(rank), y = log(count).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sorted_counts_desc[i] == 0) break;
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(sorted_counts_desc[i]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++used;
  }
  if (used < 3) return 0.0;
  const double denom = used * sxx - sx * sx;
  if (denom == 0) return 0.0;
  const double slope = (used * sxy - sx * sy) / denom;
  return -slope;  // counts fall with rank; report the positive exponent
}

TraceStats characterize(const Workload& workload) {
  TraceStats s;
  s.requests = workload.requests.size();
  s.connections = workload.num_connections;
  s.clients = workload.num_clients;
  s.distinct_files = workload.files.count();
  s.footprint_bytes = workload.files.total_bytes();
  s.mean_file_kb =
      s.distinct_files
          ? static_cast<double>(s.footprint_bytes) / s.distinct_files / 1024.0
          : 0.0;
  if (s.requests == 0) return s;

  std::vector<std::uint64_t> counts(workload.files.count(), 0);
  for (const auto& r : workload.requests) {
    s.total_bytes_transferred += r.bytes;
    s.embedded_requests += r.is_embedded;
    s.dynamic_requests += r.is_dynamic;
    if (r.file < counts.size()) ++counts[r.file];
  }
  s.span = workload.span();
  s.mean_rps = s.span > 0 ? static_cast<double>(s.requests) /
                                sim::to_seconds(s.span)
                          : 0.0;

  std::sort(counts.rbegin(), counts.rend());
  s.zipf_alpha = fit_zipf_alpha(counts);

  const std::size_t top10 = std::max<std::size_t>(1, counts.size() / 10);
  std::uint64_t top_sum = 0, cum = 0;
  const auto target90 =
      static_cast<std::uint64_t>(0.9 * static_cast<double>(s.requests));
  s.files_for_90pct = counts.size();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i < top10) top_sum += counts[i];
    cum += counts[i];
    if (cum >= target90 && s.files_for_90pct == counts.size())
      s.files_for_90pct = i + 1;
  }
  s.top10pct_share =
      static_cast<double>(top_sum) / static_cast<double>(s.requests);
  return s;
}

}  // namespace prord::trace
