#include "trace/workload.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "util/string_util.h"

namespace prord::trace {

FileId FileTable::intern(std::string_view url, std::uint32_t bytes) {
  auto it = ids_.find(std::string(url));
  if (it != ids_.end()) {
    sizes_[it->second] = std::max(sizes_[it->second], bytes);
    return it->second;
  }
  const auto id = static_cast<FileId>(urls_.size());
  urls_.emplace_back(url);
  sizes_.push_back(bytes);
  ids_.emplace(urls_.back(), id);
  return id;
}

FileId FileTable::lookup(std::string_view url) const {
  auto it = ids_.find(std::string(url));
  return it == ids_.end() ? kInvalidFile : it->second;
}

std::uint64_t FileTable::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (std::uint32_t s : sizes_) total += s;
  return total;
}

bool is_embedded_url(std::string_view url) {
  static constexpr std::array<std::string_view, 14> kEmbedded{
      "gif", "jpg", "jpeg", "png", "bmp", "ico", "css", "js",
      "swf", "class", "mp3", "wav", "avi", "mid"};
  const std::string ext = util::url_extension(url);
  return std::find(kEmbedded.begin(), kEmbedded.end(), ext) != kEmbedded.end();
}

bool is_dynamic_url(std::string_view url) {
  static constexpr std::array<std::string_view, 5> kDynamic{
      "cgi", "php", "asp", "jsp", "pl"};
  const std::string ext = util::url_extension(url);
  if (std::find(kDynamic.begin(), kDynamic.end(), ext) != kDynamic.end())
    return true;
  return util::url_path(url).find("/cgi-bin/") != std::string_view::npos;
}

Workload build_workload(std::span<const LogRecord> records,
                        const WorkloadOptions& options, FileTable seed_table) {
  Workload w;
  w.files = std::move(seed_table);
  w.requests.reserve(records.size());

  struct ClientState {
    sim::SimTime last_seen = -1;
    std::uint32_t conn = 0;
    FileId last_page = kInvalidFile;
    sim::SimTime last_page_time = -1;
    bool seen = false;
  };
  std::unordered_map<std::uint32_t, ClientState> clients;

  sim::SimTime prev_time = std::numeric_limits<sim::SimTime>::min();
  for (const auto& rec : records) {
    if (rec.time < prev_time)
      throw std::invalid_argument("build_workload: records not time-sorted");
    prev_time = rec.time;
    if (!options.keep_errors && !rec.ok()) continue;

    auto& st = clients[rec.client];
    Request req;
    req.at = rec.time;
    req.client = rec.client;
    req.file = w.files.intern(rec.url, rec.bytes);
    req.bytes = rec.bytes;
    req.is_embedded = is_embedded_url(rec.url);
    req.is_dynamic = !req.is_embedded && is_dynamic_url(rec.url);

    if (!st.seen) {
      st.seen = true;
      st.conn = static_cast<std::uint32_t>(w.num_connections++);
      req.starts_connection = true;
      ++w.num_clients;
    } else if (rec.time - st.last_seen > options.keepalive_timeout) {
      st.conn = static_cast<std::uint32_t>(w.num_connections++);
      req.starts_connection = true;
    }
    st.last_seen = rec.time;
    req.conn = st.conn;

    if (req.is_embedded) {
      if (st.last_page != kInvalidFile &&
          rec.time - st.last_page_time <= options.bundle_window)
        req.parent_page = st.last_page;
    } else {
      st.last_page = req.file;
      st.last_page_time = rec.time;
      ++w.num_main_pages;
    }

    w.requests.push_back(req);
  }
  return w;
}

}  // namespace prord::trace
