// Synthetic trace generator.
//
// Drives user sessions over a SiteModel and emits a time-ordered LogRecord
// stream. Session structure follows the classic SURGE-style web workload
// shape: Poisson session arrivals, geometric session lengths, bounded-
// Pareto think times between page views, and embedded objects requested in
// a burst right after their page (browsers fetch them on parse).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/log_record.h"
#include "trace/site_model.h"

namespace prord::trace {

/// Workload drift: the request mix shifts across consecutive *phases* of
/// the trace — the WorldCup'98 day-boundary regime where yesterday's hot
/// match pages go cold and a new set heats up. Three mechanisms compose:
///   - hot-set rotation: each phase re-maps page popularity (navigation
///     and session-entry weights) by a cyclic index shift, so the hot set
///     moves to structurally different pages while the site graph stays
///     fixed;
///   - phase flash crowds: the session arrival rate is multiplied at the
///     start of every phase (match-kickoff spikes at day boundaries);
///   - phase boundaries are exposed (phase_of) so benches can label
///     results per phase and the adaptation oracle can re-mine per phase.
/// phases <= 1 disables everything and generates byte-identical traces to
/// the pre-drift generator.
struct DriftSpec {
  std::size_t phases = 1;           ///< workload phases; <= 1 = no drift
  double phase_duration_sec = 0.0;  ///< 0 = duration_sec / phases
  /// Fraction of the page universe the hot set shifts by per phase.
  double rotation = 0.35;
  /// Arrival-rate multiplier during the first `flash_duration_sec` of
  /// every phase (1.0 = no phase flash).
  double flash_multiplier = 1.0;
  double flash_duration_sec = 0.0;

  bool enabled() const noexcept { return phases > 1; }
  double phase_length(double duration_sec) const {
    return phase_duration_sec > 0
               ? phase_duration_sec
               : duration_sec / static_cast<double>(phases ? phases : 1);
  }
  /// Phase index of trace time `t_sec` (clamped to the last phase).
  std::size_t phase_of(double t_sec, double duration_sec) const {
    if (!enabled()) return 0;
    const double len = phase_length(duration_sec);
    if (len <= 0 || t_sec <= 0) return 0;
    const auto p = static_cast<std::size_t>(t_sec / len);
    return p < phases ? p : phases - 1;
  }
};

struct TraceGenParams {
  std::size_t target_requests = 30'000;  ///< stop once this many are emitted
  double duration_sec = 3600.0;          ///< session arrivals span
  double mean_pages_per_session = 6.0;   ///< geometric mean page views
  double think_alpha = 1.4;              ///< bounded Pareto think time shape
  double think_lo_sec = 0.5;
  double think_hi_sec = 60.0;
  double embedded_gap_ms = 20.0;         ///< spacing between embedded fetches
  /// Exponent applied to page popularity when choosing the next link;
  /// >1 concentrates traffic on hot pages (heavier-tailed file popularity).
  double popularity_bias = 1.6;

  // --- Arrival-rate modulation (session starts follow an inhomogeneous
  // Poisson process, sampled by thinning).
  /// Sinusoidal day/night swing: rate(t) = base * (1 + A*sin(2*pi*t/P)).
  double diurnal_amplitude = 0.0;  ///< A in [0, 1)
  double diurnal_period_sec = 86'400.0;
  /// Flash event: the rate is multiplied by `flash_multiplier` during
  /// [flash_start_sec, flash_start_sec + flash_duration_sec) — the
  /// WorldCup match-kickoff pattern.
  double flash_multiplier = 1.0;
  double flash_start_sec = 0.0;
  double flash_duration_sec = 0.0;

  /// Workload drift across phases (hot-set rotation + phase flash crowds).
  DriftSpec drift{};

  std::uint64_t seed = 1;
};

/// A generated trace plus ground truth the tests use to validate the
/// mining pipeline (which must recover this structure from records alone).
struct GeneratedTrace {
  std::vector<LogRecord> records;          ///< sorted by time
  std::size_t num_sessions = 0;
  std::size_t num_page_views = 0;
  std::vector<std::uint32_t> session_group;  ///< group id per session
};

/// Generates a trace. Client ids are 1:1 with sessions (each session is a
/// distinct "host"), which matches how proxies/NATs appear in real logs at
/// this granularity.
GeneratedTrace generate_trace(const SiteModel& site,
                              const TraceGenParams& params);

}  // namespace prord::trace
