// Synthetic trace generator.
//
// Drives user sessions over a SiteModel and emits a time-ordered LogRecord
// stream. Session structure follows the classic SURGE-style web workload
// shape: Poisson session arrivals, geometric session lengths, bounded-
// Pareto think times between page views, and embedded objects requested in
// a burst right after their page (browsers fetch them on parse).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/log_record.h"
#include "trace/site_model.h"

namespace prord::trace {

struct TraceGenParams {
  std::size_t target_requests = 30'000;  ///< stop once this many are emitted
  double duration_sec = 3600.0;          ///< session arrivals span
  double mean_pages_per_session = 6.0;   ///< geometric mean page views
  double think_alpha = 1.4;              ///< bounded Pareto think time shape
  double think_lo_sec = 0.5;
  double think_hi_sec = 60.0;
  double embedded_gap_ms = 20.0;         ///< spacing between embedded fetches
  /// Exponent applied to page popularity when choosing the next link;
  /// >1 concentrates traffic on hot pages (heavier-tailed file popularity).
  double popularity_bias = 1.6;

  // --- Arrival-rate modulation (session starts follow an inhomogeneous
  // Poisson process, sampled by thinning).
  /// Sinusoidal day/night swing: rate(t) = base * (1 + A*sin(2*pi*t/P)).
  double diurnal_amplitude = 0.0;  ///< A in [0, 1)
  double diurnal_period_sec = 86'400.0;
  /// Flash event: the rate is multiplied by `flash_multiplier` during
  /// [flash_start_sec, flash_start_sec + flash_duration_sec) — the
  /// WorldCup match-kickoff pattern.
  double flash_multiplier = 1.0;
  double flash_start_sec = 0.0;
  double flash_duration_sec = 0.0;

  std::uint64_t seed = 1;
};

/// A generated trace plus ground truth the tests use to validate the
/// mining pipeline (which must recover this structure from records alone).
struct GeneratedTrace {
  std::vector<LogRecord> records;          ///< sorted by time
  std::size_t num_sessions = 0;
  std::size_t num_page_views = 0;
  std::vector<std::uint32_t> session_group;  ///< group id per session
};

/// Generates a trace. Client ids are 1:1 with sessions (each session is a
/// distinct "host"), which matches how proxies/NATs appear in real logs at
/// this granularity.
GeneratedTrace generate_trace(const SiteModel& site,
                              const TraceGenParams& params);

}  // namespace prord::trace
