// The three workloads of the paper's evaluation (Section 5.1).
//
// The real logs (TAMU CS department, WorldCup'98) are not redistributable;
// these generators reproduce their published aggregate shape — request
// count, file count, mean file size — and the structural properties the
// policies react to (popularity skew, session locality, bundles). See
// DESIGN.md section 2 for the substitution rationale.
#pragma once

#include "trace/generator.h"
#include "trace/site_model.h"

namespace prord::trace {

struct WorkloadSpec {
  SiteBuildParams site;
  TraceGenParams gen;
  /// Scenario label carried into results tables and metric labels. A
  /// std::string (not a literal) because the workload zoo mints scenarios
  /// at runtime from mined profiles (src/zoo/).
  std::string name;
};

/// TAMU CS department: ~27,000 requests, ~4,700 files, avg 12 KB.
/// Five user groups (students/prospective/faculty/staff/other) with
/// strongly directional navigation.
WorkloadSpec cs_dept_spec(std::uint64_t seed = 2006);

/// WorldCup'98 style: 897,498 requests over 3,809 files — tiny, extremely
/// hot working set, long sessions, image-heavy pages. `scale` in (0,1]
/// shrinks the request count proportionally for quick runs.
WorkloadSpec world_cup_spec(double scale = 1.0, std::uint64_t seed = 1998);

/// Generic synthetic trace: 30,000 requests, 3,000 files, avg 10 KB.
WorkloadSpec synthetic_spec(std::uint64_t seed = 8);

/// Builds the site and generates the trace for a spec.
struct BuiltWorkload {
  SiteModel site;
  GeneratedTrace trace;
  std::string name;
};
BuiltWorkload build(const WorkloadSpec& spec);

}  // namespace prord::trace
