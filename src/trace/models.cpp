#include "trace/models.h"

#include <algorithm>
#include <stdexcept>

namespace prord::trace {

WorkloadSpec cs_dept_spec(std::uint64_t seed) {
  WorkloadSpec spec{};
  spec.name = "cs-dept";
  // ~4,700 files: 5 sections x 156 pages + 6 indexes = 786 pages; with a
  // mean of 5 embedded objects/page the file universe is ~786 * 6 ≈ 4.7k.
  spec.site.sections = 5;
  spec.site.pages_per_section = 156;
  spec.site.mean_embedded = 5.0;
  // Mean file size 12 KB across pages and objects.
  spec.site.mean_page_bytes = 16.0 * 1024;
  spec.site.mean_embedded_bytes = 11.0 * 1024;
  spec.site.page_size_cv = 1.8;
  spec.site.embedded_size_cv = 2.2;
  spec.site.entry_zipf_alpha = 0.9;
  spec.site.num_groups = 5;  // students/prospective/faculty/staff/other
  spec.site.group_affinity = 10.0;
  spec.site.cross_section_link_prob = 0.10;
  spec.site.seed = seed;

  spec.gen.target_requests = 27'000;
  spec.gen.duration_sec = 4 * 3600.0;
  spec.gen.mean_pages_per_session = 5.0;
  spec.gen.seed = seed * 31 + 1;
  return spec;
}

WorkloadSpec world_cup_spec(double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0)
    throw std::invalid_argument("world_cup_spec: scale must be in (0,1]");
  WorkloadSpec spec{};
  spec.name = "worldcup98";
  // ~3,809 files: 8 sections x 78 pages + 9 indexes = 633 pages, with
  // mean 5 embedded objects/page => ~3.8k files. Flash-crowd behaviour:
  // very high entry skew, strong in-section affinity (everyone reads the
  // same match pages), long sessions.
  spec.site.sections = 8;
  spec.site.pages_per_section = 78;
  spec.site.mean_embedded = 5.0;
  spec.site.mean_page_bytes = 10.0 * 1024;
  spec.site.mean_embedded_bytes = 4.0 * 1024;
  spec.site.entry_zipf_alpha = 1.4;
  spec.site.num_groups = 4;
  spec.site.group_affinity = 6.0;
  spec.site.cross_section_link_prob = 0.05;
  spec.site.seed = seed;

  spec.gen.target_requests =
      static_cast<std::size_t>(897'498.0 * scale);
  spec.gen.target_requests = std::max<std::size_t>(spec.gen.target_requests, 1000);
  spec.gen.duration_sec = 6 * 3600.0 * scale;
  spec.gen.mean_pages_per_session = 12.0;  // fans follow many pages
  spec.gen.think_hi_sec = 30.0;
  spec.gen.seed = seed * 31 + 1;
  return spec;
}

WorkloadSpec synthetic_spec(std::uint64_t seed) {
  WorkloadSpec spec{};
  spec.name = "synthetic";
  // 3,000 files: 6 sections x 83 pages + 7 indexes = 505 pages x ~6 files.
  spec.site.sections = 6;
  spec.site.pages_per_section = 83;
  spec.site.mean_embedded = 5.0;
  spec.site.mean_page_bytes = 13.0 * 1024;
  spec.site.mean_embedded_bytes = 9.0 * 1024;
  spec.site.entry_zipf_alpha = 1.1;
  spec.site.num_groups = 6;
  spec.site.group_affinity = 10.0;
  spec.site.seed = seed;

  spec.gen.target_requests = 30'000;
  spec.gen.duration_sec = 2 * 3600.0;
  spec.gen.mean_pages_per_session = 6.0;
  spec.gen.seed = seed * 31 + 1;
  return spec;
}

BuiltWorkload build(const WorkloadSpec& spec) {
  SiteModel site = build_site(spec.site);
  GeneratedTrace trace = generate_trace(site, spec.gen);
  return BuiltWorkload{std::move(site), std::move(trace), spec.name};
}

}  // namespace prord::trace
