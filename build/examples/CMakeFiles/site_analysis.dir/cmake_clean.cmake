file(REMOVE_RECURSE
  "CMakeFiles/site_analysis.dir/site_analysis.cpp.o"
  "CMakeFiles/site_analysis.dir/site_analysis.cpp.o.d"
  "site_analysis"
  "site_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
