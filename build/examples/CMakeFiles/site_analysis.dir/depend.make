# Empty dependencies file for site_analysis.
# This may be replaced when dependencies are built.
