file(REMOVE_RECURSE
  "CMakeFiles/prord_sim.dir/prord_sim.cpp.o"
  "CMakeFiles/prord_sim.dir/prord_sim.cpp.o.d"
  "prord_sim"
  "prord_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
