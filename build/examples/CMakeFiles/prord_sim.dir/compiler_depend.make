# Empty compiler generated dependencies file for prord_sim.
# This may be replaced when dependencies are built.
