# Empty compiler generated dependencies file for prord_mine.
# This may be replaced when dependencies are built.
