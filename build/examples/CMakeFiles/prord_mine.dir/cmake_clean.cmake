file(REMOVE_RECURSE
  "CMakeFiles/prord_mine.dir/prord_mine.cpp.o"
  "CMakeFiles/prord_mine.dir/prord_mine.cpp.o.d"
  "prord_mine"
  "prord_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
