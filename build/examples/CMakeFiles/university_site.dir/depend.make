# Empty dependencies file for university_site.
# This may be replaced when dependencies are built.
