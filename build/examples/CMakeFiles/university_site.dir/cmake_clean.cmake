file(REMOVE_RECURSE
  "CMakeFiles/university_site.dir/university_site.cpp.o"
  "CMakeFiles/university_site.dir/university_site.cpp.o.d"
  "university_site"
  "university_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
