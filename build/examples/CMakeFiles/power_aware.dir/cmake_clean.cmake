file(REMOVE_RECURSE
  "CMakeFiles/power_aware.dir/power_aware.cpp.o"
  "CMakeFiles/power_aware.dir/power_aware.cpp.o.d"
  "power_aware"
  "power_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
