# Empty dependencies file for power_aware.
# This may be replaced when dependencies are built.
