file(REMOVE_RECURSE
  "libprord_metrics.a"
)
