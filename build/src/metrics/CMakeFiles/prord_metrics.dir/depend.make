# Empty dependencies file for prord_metrics.
# This may be replaced when dependencies are built.
