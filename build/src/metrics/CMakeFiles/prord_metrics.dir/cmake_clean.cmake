file(REMOVE_RECURSE
  "CMakeFiles/prord_metrics.dir/histogram.cpp.o"
  "CMakeFiles/prord_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/prord_metrics.dir/stats.cpp.o"
  "CMakeFiles/prord_metrics.dir/stats.cpp.o.d"
  "libprord_metrics.a"
  "libprord_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
