
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/backend_server.cpp" "src/cluster/CMakeFiles/prord_cluster.dir/backend_server.cpp.o" "gcc" "src/cluster/CMakeFiles/prord_cluster.dir/backend_server.cpp.o.d"
  "/root/repo/src/cluster/cache.cpp" "src/cluster/CMakeFiles/prord_cluster.dir/cache.cpp.o" "gcc" "src/cluster/CMakeFiles/prord_cluster.dir/cache.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/prord_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/prord_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/dispatcher.cpp" "src/cluster/CMakeFiles/prord_cluster.dir/dispatcher.cpp.o" "gcc" "src/cluster/CMakeFiles/prord_cluster.dir/dispatcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/prord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/prord_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
