file(REMOVE_RECURSE
  "CMakeFiles/prord_cluster.dir/backend_server.cpp.o"
  "CMakeFiles/prord_cluster.dir/backend_server.cpp.o.d"
  "CMakeFiles/prord_cluster.dir/cache.cpp.o"
  "CMakeFiles/prord_cluster.dir/cache.cpp.o.d"
  "CMakeFiles/prord_cluster.dir/cluster.cpp.o"
  "CMakeFiles/prord_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/prord_cluster.dir/dispatcher.cpp.o"
  "CMakeFiles/prord_cluster.dir/dispatcher.cpp.o.d"
  "libprord_cluster.a"
  "libprord_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
