# Empty dependencies file for prord_cluster.
# This may be replaced when dependencies are built.
