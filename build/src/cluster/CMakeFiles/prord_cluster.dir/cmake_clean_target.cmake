file(REMOVE_RECURSE
  "libprord_cluster.a"
)
