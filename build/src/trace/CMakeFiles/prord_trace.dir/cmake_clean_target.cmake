file(REMOVE_RECURSE
  "libprord_trace.a"
)
