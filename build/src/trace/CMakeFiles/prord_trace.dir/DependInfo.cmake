
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/clf.cpp" "src/trace/CMakeFiles/prord_trace.dir/clf.cpp.o" "gcc" "src/trace/CMakeFiles/prord_trace.dir/clf.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/prord_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/prord_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/models.cpp" "src/trace/CMakeFiles/prord_trace.dir/models.cpp.o" "gcc" "src/trace/CMakeFiles/prord_trace.dir/models.cpp.o.d"
  "/root/repo/src/trace/site_model.cpp" "src/trace/CMakeFiles/prord_trace.dir/site_model.cpp.o" "gcc" "src/trace/CMakeFiles/prord_trace.dir/site_model.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/prord_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/prord_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "src/trace/CMakeFiles/prord_trace.dir/workload.cpp.o" "gcc" "src/trace/CMakeFiles/prord_trace.dir/workload.cpp.o.d"
  "/root/repo/src/trace/worldcup_format.cpp" "src/trace/CMakeFiles/prord_trace.dir/worldcup_format.cpp.o" "gcc" "src/trace/CMakeFiles/prord_trace.dir/worldcup_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prord_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/prord_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
