file(REMOVE_RECURSE
  "CMakeFiles/prord_trace.dir/clf.cpp.o"
  "CMakeFiles/prord_trace.dir/clf.cpp.o.d"
  "CMakeFiles/prord_trace.dir/generator.cpp.o"
  "CMakeFiles/prord_trace.dir/generator.cpp.o.d"
  "CMakeFiles/prord_trace.dir/models.cpp.o"
  "CMakeFiles/prord_trace.dir/models.cpp.o.d"
  "CMakeFiles/prord_trace.dir/site_model.cpp.o"
  "CMakeFiles/prord_trace.dir/site_model.cpp.o.d"
  "CMakeFiles/prord_trace.dir/stats.cpp.o"
  "CMakeFiles/prord_trace.dir/stats.cpp.o.d"
  "CMakeFiles/prord_trace.dir/workload.cpp.o"
  "CMakeFiles/prord_trace.dir/workload.cpp.o.d"
  "CMakeFiles/prord_trace.dir/worldcup_format.cpp.o"
  "CMakeFiles/prord_trace.dir/worldcup_format.cpp.o.d"
  "libprord_trace.a"
  "libprord_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
