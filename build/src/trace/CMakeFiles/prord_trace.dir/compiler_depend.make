# Empty compiler generated dependencies file for prord_trace.
# This may be replaced when dependencies are built.
