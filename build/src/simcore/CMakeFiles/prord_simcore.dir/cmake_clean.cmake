file(REMOVE_RECURSE
  "CMakeFiles/prord_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/prord_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/prord_simcore.dir/simulator.cpp.o"
  "CMakeFiles/prord_simcore.dir/simulator.cpp.o.d"
  "libprord_simcore.a"
  "libprord_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
