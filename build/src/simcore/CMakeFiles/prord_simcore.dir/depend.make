# Empty dependencies file for prord_simcore.
# This may be replaced when dependencies are built.
