file(REMOVE_RECURSE
  "libprord_simcore.a"
)
