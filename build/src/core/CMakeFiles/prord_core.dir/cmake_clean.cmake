file(REMOVE_RECURSE
  "CMakeFiles/prord_core.dir/experiment.cpp.o"
  "CMakeFiles/prord_core.dir/experiment.cpp.o.d"
  "CMakeFiles/prord_core.dir/workload_player.cpp.o"
  "CMakeFiles/prord_core.dir/workload_player.cpp.o.d"
  "libprord_core.a"
  "libprord_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
