file(REMOVE_RECURSE
  "libprord_core.a"
)
