# Empty dependencies file for prord_core.
# This may be replaced when dependencies are built.
