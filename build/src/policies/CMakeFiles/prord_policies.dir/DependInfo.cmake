
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/ext_lard_phttp.cpp" "src/policies/CMakeFiles/prord_policies.dir/ext_lard_phttp.cpp.o" "gcc" "src/policies/CMakeFiles/prord_policies.dir/ext_lard_phttp.cpp.o.d"
  "/root/repo/src/policies/lard.cpp" "src/policies/CMakeFiles/prord_policies.dir/lard.cpp.o" "gcc" "src/policies/CMakeFiles/prord_policies.dir/lard.cpp.o.d"
  "/root/repo/src/policies/press.cpp" "src/policies/CMakeFiles/prord_policies.dir/press.cpp.o" "gcc" "src/policies/CMakeFiles/prord_policies.dir/press.cpp.o.d"
  "/root/repo/src/policies/prord.cpp" "src/policies/CMakeFiles/prord_policies.dir/prord.cpp.o" "gcc" "src/policies/CMakeFiles/prord_policies.dir/prord.cpp.o.d"
  "/root/repo/src/policies/wrr.cpp" "src/policies/CMakeFiles/prord_policies.dir/wrr.cpp.o" "gcc" "src/policies/CMakeFiles/prord_policies.dir/wrr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/prord_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/logmining/CMakeFiles/prord_logmining.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/prord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/prord_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
