file(REMOVE_RECURSE
  "libprord_policies.a"
)
