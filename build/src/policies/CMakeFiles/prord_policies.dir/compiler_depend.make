# Empty compiler generated dependencies file for prord_policies.
# This may be replaced when dependencies are built.
