file(REMOVE_RECURSE
  "CMakeFiles/prord_policies.dir/ext_lard_phttp.cpp.o"
  "CMakeFiles/prord_policies.dir/ext_lard_phttp.cpp.o.d"
  "CMakeFiles/prord_policies.dir/lard.cpp.o"
  "CMakeFiles/prord_policies.dir/lard.cpp.o.d"
  "CMakeFiles/prord_policies.dir/press.cpp.o"
  "CMakeFiles/prord_policies.dir/press.cpp.o.d"
  "CMakeFiles/prord_policies.dir/prord.cpp.o"
  "CMakeFiles/prord_policies.dir/prord.cpp.o.d"
  "CMakeFiles/prord_policies.dir/wrr.cpp.o"
  "CMakeFiles/prord_policies.dir/wrr.cpp.o.d"
  "libprord_policies.a"
  "libprord_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
