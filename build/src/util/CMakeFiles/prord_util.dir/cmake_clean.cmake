file(REMOVE_RECURSE
  "CMakeFiles/prord_util.dir/distributions.cpp.o"
  "CMakeFiles/prord_util.dir/distributions.cpp.o.d"
  "CMakeFiles/prord_util.dir/string_util.cpp.o"
  "CMakeFiles/prord_util.dir/string_util.cpp.o.d"
  "CMakeFiles/prord_util.dir/table.cpp.o"
  "CMakeFiles/prord_util.dir/table.cpp.o.d"
  "libprord_util.a"
  "libprord_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
