file(REMOVE_RECURSE
  "libprord_util.a"
)
