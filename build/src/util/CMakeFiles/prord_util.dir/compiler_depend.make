# Empty compiler generated dependencies file for prord_util.
# This may be replaced when dependencies are built.
