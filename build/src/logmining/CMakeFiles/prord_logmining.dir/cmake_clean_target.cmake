file(REMOVE_RECURSE
  "libprord_logmining.a"
)
