
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logmining/association_rules.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/association_rules.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/association_rules.cpp.o.d"
  "/root/repo/src/logmining/bundle.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/bundle.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/bundle.cpp.o.d"
  "/root/repo/src/logmining/categorizer.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/categorizer.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/categorizer.cpp.o.d"
  "/root/repo/src/logmining/mining_model.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/mining_model.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/mining_model.cpp.o.d"
  "/root/repo/src/logmining/path_mining.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/path_mining.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/path_mining.cpp.o.d"
  "/root/repo/src/logmining/popularity.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/popularity.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/popularity.cpp.o.d"
  "/root/repo/src/logmining/predictor.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/predictor.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/predictor.cpp.o.d"
  "/root/repo/src/logmining/reorganization.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/reorganization.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/reorganization.cpp.o.d"
  "/root/repo/src/logmining/replication.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/replication.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/replication.cpp.o.d"
  "/root/repo/src/logmining/session.cpp" "src/logmining/CMakeFiles/prord_logmining.dir/session.cpp.o" "gcc" "src/logmining/CMakeFiles/prord_logmining.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/prord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prord_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/prord_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
