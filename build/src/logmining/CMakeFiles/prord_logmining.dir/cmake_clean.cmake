file(REMOVE_RECURSE
  "CMakeFiles/prord_logmining.dir/association_rules.cpp.o"
  "CMakeFiles/prord_logmining.dir/association_rules.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/bundle.cpp.o"
  "CMakeFiles/prord_logmining.dir/bundle.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/categorizer.cpp.o"
  "CMakeFiles/prord_logmining.dir/categorizer.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/mining_model.cpp.o"
  "CMakeFiles/prord_logmining.dir/mining_model.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/path_mining.cpp.o"
  "CMakeFiles/prord_logmining.dir/path_mining.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/popularity.cpp.o"
  "CMakeFiles/prord_logmining.dir/popularity.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/predictor.cpp.o"
  "CMakeFiles/prord_logmining.dir/predictor.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/reorganization.cpp.o"
  "CMakeFiles/prord_logmining.dir/reorganization.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/replication.cpp.o"
  "CMakeFiles/prord_logmining.dir/replication.cpp.o.d"
  "CMakeFiles/prord_logmining.dir/session.cpp.o"
  "CMakeFiles/prord_logmining.dir/session.cpp.o.d"
  "libprord_logmining.a"
  "libprord_logmining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prord_logmining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
