# Empty dependencies file for prord_logmining.
# This may be replaced when dependencies are built.
