# Empty dependencies file for bench_fig8_memory_sweep.
# This may be replaced when dependencies are built.
