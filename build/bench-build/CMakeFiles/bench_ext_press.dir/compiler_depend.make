# Empty compiler generated dependencies file for bench_ext_press.
# This may be replaced when dependencies are built.
