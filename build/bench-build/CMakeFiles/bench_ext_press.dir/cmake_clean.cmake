file(REMOVE_RECURSE
  "../bench/bench_ext_press"
  "../bench/bench_ext_press.pdb"
  "CMakeFiles/bench_ext_press.dir/bench_ext_press.cpp.o"
  "CMakeFiles/bench_ext_press.dir/bench_ext_press.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_press.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
