
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scalability.cpp" "bench-build/CMakeFiles/bench_scalability.dir/bench_scalability.cpp.o" "gcc" "bench-build/CMakeFiles/bench_scalability.dir/bench_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/prord_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/prord_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/logmining/CMakeFiles/prord_logmining.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/prord_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/prord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/prord_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
