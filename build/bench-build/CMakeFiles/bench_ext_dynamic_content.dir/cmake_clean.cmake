file(REMOVE_RECURSE
  "../bench/bench_ext_dynamic_content"
  "../bench/bench_ext_dynamic_content.pdb"
  "CMakeFiles/bench_ext_dynamic_content.dir/bench_ext_dynamic_content.cpp.o"
  "CMakeFiles/bench_ext_dynamic_content.dir/bench_ext_dynamic_content.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dynamic_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
