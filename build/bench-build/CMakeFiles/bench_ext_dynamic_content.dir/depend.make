# Empty dependencies file for bench_ext_dynamic_content.
# This may be replaced when dependencies are built.
