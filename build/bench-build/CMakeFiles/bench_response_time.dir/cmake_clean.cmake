file(REMOVE_RECURSE
  "../bench/bench_response_time"
  "../bench/bench_response_time.pdb"
  "CMakeFiles/bench_response_time.dir/bench_response_time.cpp.o"
  "CMakeFiles/bench_response_time.dir/bench_response_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
