# Empty dependencies file for bench_hit_rates.
# This may be replaced when dependencies are built.
