file(REMOVE_RECURSE
  "../bench/bench_hit_rates"
  "../bench/bench_hit_rates.pdb"
  "CMakeFiles/bench_hit_rates.dir/bench_hit_rates.cpp.o"
  "CMakeFiles/bench_hit_rates.dir/bench_hit_rates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
