# Empty dependencies file for bench_fig6_dispatch_frequency.
# This may be replaced when dependencies are built.
