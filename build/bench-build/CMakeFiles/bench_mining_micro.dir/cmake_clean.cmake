file(REMOVE_RECURSE
  "../bench/bench_mining_micro"
  "../bench/bench_mining_micro.pdb"
  "CMakeFiles/bench_mining_micro.dir/bench_mining_micro.cpp.o"
  "CMakeFiles/bench_mining_micro.dir/bench_mining_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mining_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
