# Empty compiler generated dependencies file for bench_mining_micro.
# This may be replaced when dependencies are built.
