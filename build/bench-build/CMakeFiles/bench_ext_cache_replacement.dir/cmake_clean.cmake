file(REMOVE_RECURSE
  "../bench/bench_ext_cache_replacement"
  "../bench/bench_ext_cache_replacement.pdb"
  "CMakeFiles/bench_ext_cache_replacement.dir/bench_ext_cache_replacement.cpp.o"
  "CMakeFiles/bench_ext_cache_replacement.dir/bench_ext_cache_replacement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cache_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
