# Empty dependencies file for bench_ext_decentralized.
# This may be replaced when dependencies are built.
