file(REMOVE_RECURSE
  "../bench/bench_ext_decentralized"
  "../bench/bench_ext_decentralized.pdb"
  "CMakeFiles/bench_ext_decentralized.dir/bench_ext_decentralized.cpp.o"
  "CMakeFiles/bench_ext_decentralized.dir/bench_ext_decentralized.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_decentralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
