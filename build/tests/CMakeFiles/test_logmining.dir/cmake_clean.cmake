file(REMOVE_RECURSE
  "CMakeFiles/test_logmining.dir/logmining/association_rules_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/association_rules_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/bundle_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/bundle_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/categorizer_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/categorizer_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/mining_model_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/mining_model_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/path_mining_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/path_mining_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/popularity_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/popularity_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/predictor_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/predictor_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/reorganization_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/reorganization_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/serialization_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/serialization_test.cpp.o.d"
  "CMakeFiles/test_logmining.dir/logmining/session_test.cpp.o"
  "CMakeFiles/test_logmining.dir/logmining/session_test.cpp.o.d"
  "test_logmining"
  "test_logmining.pdb"
  "test_logmining[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logmining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
