# Empty dependencies file for test_logmining.
# This may be replaced when dependencies are built.
