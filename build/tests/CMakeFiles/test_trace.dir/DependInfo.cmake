
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/clf_fuzz_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/clf_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/clf_fuzz_test.cpp.o.d"
  "/root/repo/tests/trace/clf_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/clf_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/clf_test.cpp.o.d"
  "/root/repo/tests/trace/generator_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/generator_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/generator_test.cpp.o.d"
  "/root/repo/tests/trace/site_model_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/site_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/site_model_test.cpp.o.d"
  "/root/repo/tests/trace/stats_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/stats_test.cpp.o.d"
  "/root/repo/tests/trace/workload_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/workload_test.cpp.o.d"
  "/root/repo/tests/trace/worldcup_format_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/worldcup_format_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/worldcup_format_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/prord_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/prord_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/logmining/CMakeFiles/prord_logmining.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/prord_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/prord_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/prord_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
