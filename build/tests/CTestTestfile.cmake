# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_logmining[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
