// Mining micro-benchmarks and predictor-accuracy ablation.
//
// Two parts:
//  1. google-benchmark timings of the mining data structures themselves —
//     training throughput and per-prediction latency for the three
//     predictors at orders 1..3, Apriori rule mining, and Algorithm 3
//     planning. These are the overheads Section 4.1.1(i) worries about.
//  2. An accuracy table: next-page hit rate of the candidate-path scheme
//     (Algorithms 1-2) vs PPM [26], the dependency graph [19] and Apriori
//     association rules [23][24] on held-out sessions — reproducing the
//     comparison the paper cites from [21] (sequence beats set-based).
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "logmining/association_rules.h"
#include "logmining/mining_model.h"
#include "logmining/replication.h"
#include "trace/models.h"
#include "trace/workload.h"
#include "util/table.h"

namespace {

using namespace prord;

struct Data {
  Data() {
    auto spec = trace::synthetic_spec();
    spec.gen.target_requests = 20'000;
    auto built = trace::build(spec);
    auto workload = trace::build_workload(built.trace.records);
    sessions = logmining::build_sessions(workload.requests);
    const std::size_t split = sessions.size() / 2;
    train.assign(sessions.begin(), sessions.begin() + split);
    test.assign(sessions.begin() + split, sessions.end());
  }
  std::vector<logmining::Session> sessions, train, test;
};

Data& data() {
  static Data d;
  return d;
}

void bm_predictor_train(benchmark::State& state) {
  const auto kind = static_cast<logmining::PredictorKind>(state.range(0));
  const auto order = static_cast<unsigned>(state.range(1));
  std::size_t pages = 0;
  for (auto _ : state) {
    auto p = logmining::make_predictor(kind, order);
    for (const auto& s : data().train) {
      p->observe(s.pages);
      pages += s.pages.size();
    }
    benchmark::DoNotOptimize(p->num_entries());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pages));
}

void bm_predictor_predict(benchmark::State& state) {
  const auto kind = static_cast<logmining::PredictorKind>(state.range(0));
  const auto order = static_cast<unsigned>(state.range(1));
  auto p = logmining::make_predictor(kind, order);
  for (const auto& s : data().train) p->observe(s.pages);
  std::size_t i = 0;
  std::size_t predictions = 0;
  for (auto _ : state) {
    const auto& s = data().test[i++ % data().test.size()];
    benchmark::DoNotOptimize(p->predict(s.pages, 0.1));
    ++predictions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(predictions));
}

void bm_apriori_train(benchmark::State& state) {
  logmining::AprioriOptions opt;
  opt.min_support = 0.02;
  for (auto _ : state) {
    logmining::AssociationRuleMiner miner(opt);
    miner.train(data().train);
    benchmark::DoNotOptimize(miner.rules().size());
  }
}

void bm_replication_plan(benchmark::State& state) {
  logmining::PopularityTracker tracker(0);
  util::Rng rng(1);
  for (int i = 0; i < 100'000; ++i)
    tracker.record_hit(static_cast<trace::FileId>(rng.below(4000)), 0);
  for (auto _ : state) {
    const auto table = tracker.rank_table(0);
    benchmark::DoNotOptimize(
        logmining::plan_replication(table, 8).size());
  }
}

/// Top-1 next-page accuracy of a predictor over held-out sessions.
template <typename PredictFn>
double accuracy(PredictFn&& predict) {
  std::size_t hits = 0, trials = 0;
  for (const auto& s : data().test) {
    for (std::size_t i = 1; i < s.pages.size(); ++i) {
      const auto ctx = std::span(s.pages).subspan(0, i);
      const auto pred = predict(ctx);
      if (!pred) continue;
      ++trials;
      hits += (pred->page == s.pages[i]);
    }
  }
  return trials ? static_cast<double>(hits) / static_cast<double>(trials)
                : 0.0;
}

void print_accuracy_table() {
  std::cout << "\n=== Predictor accuracy on held-out sessions (top-1, "
               "min-confidence 0.1) ===\n\n";
  util::Table table({"scheme", "order/window", "accuracy", "entries"});

  for (unsigned order = 1; order <= 3; ++order) {
    for (const auto kind : {logmining::PredictorKind::kCandidatePath,
                            logmining::PredictorKind::kMarkov,
                            logmining::PredictorKind::kDependencyGraph}) {
      auto p = logmining::make_predictor(kind, order);
      for (const auto& s : data().train) p->observe(s.pages);
      const double acc = accuracy([&](std::span<const trace::FileId> ctx) {
        return p->predict(ctx, 0.1);
      });
      const char* name = kind == logmining::PredictorKind::kCandidatePath
                             ? "candidate-path (Alg. 1-2)"
                         : kind == logmining::PredictorKind::kMarkov
                             ? "PPM [26]"
                             : "dependency graph [19]";
      table.add_row({name, std::to_string(order), util::Table::num(acc, 3),
                     std::to_string(p->num_entries())});
    }
  }
  // Set-based association rules (the paper's point: sequences win).
  logmining::AprioriOptions opt;
  opt.min_support = 0.005;
  opt.min_confidence = 0.1;
  logmining::AssociationRuleMiner miner(opt);
  miner.train(data().train);
  const double acc = accuracy([&](std::span<const trace::FileId> ctx) {
    return miner.predict(ctx, 0.1);
  });
  table.add_row({"association rules [23,24]", "-", util::Table::num(acc, 3),
                 std::to_string(miner.rules().size())});
  table.print(std::cout);
  std::cout << "\nPaper shape ([21] via Section 2.2.3): sequence-based "
               "predictors beat set-based association rules.\n";
}

}  // namespace

BENCHMARK(bm_predictor_train)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_predictor_predict)->ArgsProduct({{0, 1, 2}, {1, 2, 3}});
BENCHMARK(bm_apriori_train)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_replication_plan)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_accuracy_table();
  return 0;
}
