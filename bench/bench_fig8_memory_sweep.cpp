// Fig. 8 — Throughput varying the amount of site data in memory.
//
// Sweeps the cluster-aggregate memory fraction and compares LARD with
// PRORD. Expected shape: PRORD preserves locality better, so it holds its
// throughput as memory shrinks while LARD degrades faster; the curves
// converge when (nearly) everything fits.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

constexpr double kFractions[] = {0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.0};

void build(bench::Grid& grid) {
  for (const double fraction : kFractions) {
    for (const auto policy :
         {core::PolicyKind::kLard, core::PolicyKind::kPrord}) {
      core::ExperimentConfig config;
      config.workload = trace::cs_dept_spec();
      config.policy = policy;
      config.memory_fraction = fraction;
      grid.add("mem=" + util::Table::num(fraction, 2) + "/" +
                   core::policy_label(policy),
               std::move(config));
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Fig. 8: Throughput vs data accommodated in memory "
               "(cs-dept) ===\n\n";
  util::Table table({"memory-fraction", "policy", "throughput(req/s)",
                     "hit-rate", "PRORD/LARD"});
  double lard = 0;
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    if (r.policy == "LARD") lard = r.throughput_rps();
    const bool is_prord = r.policy == "PRORD";
    table.add_row(
        {cell.label.substr(4, 4), r.policy,
         util::Table::num(r.throughput_rps(), 0),
         util::Table::num(r.hit_rate(), 3),
         is_prord && lard > 0 ? util::Table::num(r.throughput_rps() / lard, 2)
                              : "-"});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: PRORD is more consistent in preserving "
               "locality; its advantage widens as memory shrinks.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto runner = bench::parse_runner_flags(argc, argv);
  const auto obs = bench::parse_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  grid.set_options(runner);
  grid.set_obs(obs);
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("fig8/memory_sweep", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("fig8_memory_sweep");
  grid.export_obs();
  print(grid);
  grid.print_replication_summary();
  return 0;
}
