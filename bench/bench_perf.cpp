// Hot-path perf harness: the gate behind BENCH_sim.json / BENCH_live.json.
//
// Unlike the figure benches (which reproduce paper *results*), this binary
// measures the simulator itself. Each pinned scenario runs twice:
//   optimized — the production configuration (timing-wheel event queue,
//               inline callables, pooled events/records, batched metrics);
//   baseline  — the pre-optimization hot path, recreated via the runtime
//               switches those subsystems keep for exactly this purpose
//               (heap-reference queue, std::function-style boxed callables,
//               pool bypass, write-through metrics).
// Results are byte-identical across modes (the determinism suite enforces
// it); only the wall clock differs. The report records events/sec, req/s,
// p50/p99 response times, and allocations/event from the counting
// allocator below, plus optimized/baseline speedup ratios. CI runs this
// with --min-fig8-speedup as a regression gate and uploads the JSON
// artifacts (docs/PERF.md).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/perf_report.h"
#include "logmining/popularity.h"
#include "net/live_cluster.h"
#include "simcore/event_queue.h"
#include "trace/models.h"
#include "util/inplace_function.h"
#include "util/pool.h"
#include "zoo/scenario_registry.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: global new/delete overrides local to this binary.
// Counts every heap allocation on the process; scenarios snapshot the
// counter around their run, so the figure includes everything the run
// allocates (events, closures, records, strings) — which is the point.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1)))
    return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace prord;

// ---------------------------------------------------------------------------
// Pinned scenarios. Configs must not drift run-to-run — trajectory entries
// in docs/PERF.md are only comparable if the workload stays fixed.
// ---------------------------------------------------------------------------

core::ExperimentConfig fig8_config() {
  // One cell of the Fig. 8 memory sweep: the paper's standing assumption
  // (~30% of the site in memory) under PRORD on the CS-department trace.
  core::ExperimentConfig config;
  config.workload = trace::cs_dept_spec();
  config.policy = core::PolicyKind::kPrord;
  config.memory_fraction = 0.30;
  config.obs.metrics = true;
  return config;
}

core::ExperimentConfig drift_config() {
  // bench_adaptation's drift-harsh/adaptive cell: online re-mining keeps
  // the epoch timer, sessionizer, and model publishes on the hot path.
  core::ExperimentConfig config;
  config.workload = trace::synthetic_spec();
  config.workload.gen.drift = {.phases = 8, .rotation = 0.6,
                               .flash_multiplier = 3.0,
                               .flash_duration_sec = 200.0};
  config.policy = core::PolicyKind::kPrord;
  config.obs.metrics = true;
  config.adapt.enabled = true;
  config.adapt.epoch = sim::sec(600.0);
  config.adapt.window = sim::sec(500.0);
  config.adapt.popularity_halflife_s = 1200.0;
  return config;
}

// Workload-zoo scenarios (src/zoo/): the three builtin profiles as pinned
// perf cells. Same determinism rule as above — the builtins are frozen
// artifacts (examples/profiles/*.json, CI-diffed), so the cells stay
// comparable across runs. Requests are capped so each cell costs roughly
// one fig8 cell.
core::ExperimentConfig zoo_config(const char* name) {
  core::ExperimentConfig config;
  config.workload = zoo::to_workload_spec(zoo::builtin_profile(name));
  config.workload.gen.target_requests =
      std::min<std::size_t>(config.workload.gen.target_requests, 30'000);
  config.policy = core::PolicyKind::kPrord;
  config.obs.metrics = true;
  return config;
}

core::ExperimentConfig zoo_cdn_flash_config() {
  return zoo_config("cdn-flash");
}
core::ExperimentConfig zoo_api_gateway_config() {
  return zoo_config("api-gateway");
}
core::ExperimentConfig zoo_ecommerce_config() {
  return zoo_config("ecommerce-diurnal");
}

core::ExperimentConfig fault_config() {
  // bench_fault_tolerance's pinned schedule: crash srv1 an hour in,
  // restart an hour later — exercises retries, heartbeats, and re-warm.
  core::ExperimentConfig config;
  config.workload = trace::cs_dept_spec();
  config.policy = core::PolicyKind::kPrord;
  config.obs.metrics = true;
  config.faults.plan = "crash@3600s:srv1,restart@7200s:srv1";
  config.faults.heartbeat_interval = sim::sec(30.0);
  config.faults.max_retries = 3;
  return config;
}

// Live loopback burst: small enough to finish in seconds, large enough
// that socket + router throughput dominates setup.
net::LiveConfig live_config() {
  net::LiveConfig config;
  config.policy = core::PolicyKind::kPrord;
  config.backends = 4;
  config.requests = 30'000;
  config.concurrency = 16;
  config.workload = trace::synthetic_spec();
  return config;
}

enum class Mode { kOptimized, kBaseline };

const char* mode_name(Mode m) {
  return m == Mode::kOptimized ? "optimized" : "baseline";
}

/// Flips every hot-path subsystem to the requested implementation.
/// Baseline recreates the pre-optimization stack; optimized restores the
/// production defaults. Only called between runs — the switches are
/// documented as unsafe to flip mid-simulation.
void apply_mode(Mode m) {
  const bool legacy = m == Mode::kBaseline;
  sim::set_default_queue_impl(legacy ? sim::QueueImpl::kHeapReference
                                     : sim::QueueImpl::kBucketed);
  util::set_legacy_callable_boxing(legacy);
  util::set_pool_bypass(legacy);
  logmining::set_legacy_rank_selection(legacy);
}

core::PerfScenario run_sim_scenario(const std::string& name, Mode mode,
                                    core::ExperimentConfig config) {
  apply_mode(mode);
  config.obs.batch_metrics = mode == Mode::kOptimized;

  core::PerfScenario s;
  s.name = name;
  s.mode = mode_name(mode);
  std::fprintf(stderr, "[bench_perf] %s (%s)...\n", name.c_str(), s.mode.c_str());

  const std::uint64_t allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
  s.t_start_ms = core::unix_now_ms();
  const auto t0 = std::chrono::steady_clock::now();
  const core::ExperimentResult result = core::run_experiment(config);
  const auto t1 = std::chrono::steady_clock::now();
  s.t_end_ms = core::unix_now_ms();
  s.allocations =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs0;

  s.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  s.sim_wall_seconds = result.sim_wall_seconds;
  s.sim_events = result.sim_events;
  // Events/sec over the sim loop only: setup (site/trace generation,
  // offline mining) is identical in both modes and would dilute the
  // optimized/baseline ratio toward 1x.
  s.events_per_sec = s.sim_wall_seconds > 0
                         ? static_cast<double>(s.sim_events) /
                               s.sim_wall_seconds
                         : 0.0;
  s.requests = result.num_requests;
  s.requests_per_sec = result.throughput_rps();  // simulated-time rate
  s.p50_response_ms =
      static_cast<double>(result.metrics.response_hist.p50()) / 1000.0;
  s.p99_response_ms =
      static_cast<double>(result.metrics.response_hist.p99()) / 1000.0;
  s.allocations_per_event =
      s.sim_events ? static_cast<double>(s.allocations) /
                         static_cast<double>(s.sim_events)
                   : 0.0;
  apply_mode(Mode::kOptimized);
  return s;
}

/// One live loopback run. `trace_sample_rate` > 0 measures the tracing
/// tax: the traced scenario divides by the untraced one to produce the
/// live_tracing_rps_ratio gate (docs/OBSERVABILITY.md).
core::PerfScenario run_live_scenario(const std::string& name,
                                     double trace_sample_rate) {
  apply_mode(Mode::kOptimized);
  core::PerfScenario s;
  s.name = name;
  s.mode = "optimized";
  s.shards = 1;  // run_live is always a single distributor shard
  std::fprintf(stderr, "[bench_perf] %s...\n", name.c_str());

  net::LiveConfig config = live_config();
  config.trace_sample_rate = trace_sample_rate;
  const std::uint64_t allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
  s.t_start_ms = core::unix_now_ms();
  const net::LiveRunResult result = net::run_live(config);
  s.t_end_ms = core::unix_now_ms();
  s.allocations =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs0;

  if (!result.started) {
    std::fprintf(stderr, "[bench_perf] live run failed to start\n");
    return s;  // zeros; the schema test tolerates a missing live file,
               // but an emitted one must carry real throughput.
  }
  s.wall_seconds = result.load.duration_s;
  s.requests = result.load.completed;
  s.requests_per_sec = result.load.throughput_rps();  // wall-clock rate
  s.p50_response_ms =
      static_cast<double>(result.load.latency_hist.p50()) / 1000.0;
  s.p99_response_ms =
      static_cast<double>(result.load.latency_hist.p99()) / 1000.0;
  // No simulator here: normalize allocations per completed request.
  s.allocations_per_event =
      s.requests ? static_cast<double>(s.allocations) /
                       static_cast<double>(s.requests)
                 : 0.0;
  return s;
}

// Live prefetch A/B (docs/PREDICTOR.md): the same paced run with the
// prediction service off vs. on. LARD-bundle is the substrate — bundle
// forwarding keeps each connection pinned to the back-end the prefetches
// warmed, but unlike full PRORD the policy itself never preloads, so any
// cache-hit gain is attributable to the X-Prord-Prefetch path. The open
// loop gives issued prefetches wall-clock lead over the client's next
// request (a saturated closed loop races them and loses), and the small
// cache keeps the LRU churning so converted misses are visible.
net::LiveConfig live_prefetch_config() {
  net::LiveConfig config;
  config.policy = core::PolicyKind::kLardBundle;
  config.backends = 4;
  config.requests = 12'000;
  config.concurrency = 16;
  config.open_loop = true;
  config.time_scale = 400.0;
  config.memory_fraction = 0.02;
  config.workload = trace::synthetic_spec();
  return config;
}

struct LivePrefetchCell {
  core::PerfScenario scenario;
  double worker_hit_rate = 0.0;
  double waste_ratio = 0.0;
  std::uint64_t issued = 0;
};

LivePrefetchCell run_live_prefetch_cell(const std::string& name,
                                        bool prefetch_on) {
  apply_mode(Mode::kOptimized);
  LivePrefetchCell cell;
  core::PerfScenario& s = cell.scenario;
  s.name = name;
  s.mode = "optimized";
  s.shards = 1;
  std::fprintf(stderr, "[bench_perf] %s...\n", name.c_str());

  net::LiveConfig config = live_prefetch_config();
  if (prefetch_on) {
    config.prefetch = true;
    config.predictor.algo = predict::Algo::kMithril;
    config.predictor.confidence = 0.1;
    config.predictor.max_associations = 8;
  }
  const std::uint64_t allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
  s.t_start_ms = core::unix_now_ms();
  const net::LiveRunResult result = net::run_live(config);
  s.t_end_ms = core::unix_now_ms();
  s.allocations = g_heap_allocs.load(std::memory_order_relaxed) - allocs0;

  if (!result.started) {
    std::fprintf(stderr, "[bench_perf] live prefetch run failed to start\n");
    return cell;
  }
  s.wall_seconds = result.load.duration_s;
  s.requests = result.load.completed;
  s.requests_per_sec = result.load.throughput_rps();
  s.p50_response_ms =
      static_cast<double>(result.load.latency_hist.p50()) / 1000.0;
  s.p99_response_ms =
      static_cast<double>(result.load.latency_hist.p99()) / 1000.0;
  s.allocations_per_event =
      s.requests ? static_cast<double>(s.allocations) /
                       static_cast<double>(s.requests)
                 : 0.0;
  cell.worker_hit_rate = result.worker_hit_rate();
  cell.waste_ratio = result.prefetch_waste_ratio();
  cell.issued = result.prefetch_issued;
  return cell;
}

struct Options {
  std::string out_dir = ".";
  double min_fig8_speedup = 0.0;
  /// Max allowed live req/s loss at 1% trace sampling (0 = report only).
  double max_trace_overhead = 0.0;
  /// Min required cache-hit-rate ratio, prefetch on / off (0 = report
  /// only). 1.0 asserts "prefetch never hurts"; CI stays report-only
  /// because a loaded runner can starve the paced open loop.
  double min_prefetch_hit_gain = 0.0;
  bool skip_live = false;
};

bool parse_flags(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0) {
      opts.out_dir = std::string(arg.substr(10));
    } else if (arg.rfind("--min-fig8-speedup=", 0) == 0) {
      opts.min_fig8_speedup = std::atof(arg.substr(19).data());
    } else if (arg == "--skip-live") {
      opts.skip_live = true;
    } else if (arg.rfind("--max-trace-overhead=", 0) == 0) {
      opts.max_trace_overhead = std::atof(arg.substr(21).data());
    } else if (arg.rfind("--min-prefetch-hit-gain=", 0) == 0) {
      opts.min_prefetch_hit_gain = std::atof(arg.substr(24).data());
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: bench_perf [--out-dir=DIR] "
                   "[--min-fig8-speedup=X] [--max-trace-overhead=F] "
                   "[--min-prefetch-hit-gain=X] [--skip-live]\n");
      return false;
    } else {
      std::fprintf(stderr, "bench_perf: unknown flag '%s'\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_flags(argc, argv, opts)) return 2;

  const std::string sha = core::detect_git_sha();

  struct SimCase {
    const char* name;
    core::ExperimentConfig (*config)();
  };
  const SimCase kSimCases[] = {
      {"fig8_memory_sweep", fig8_config},
      {"drift_adaptive", drift_config},
      {"fault_recovery", fault_config},
      {"zoo_cdn_flash", zoo_cdn_flash_config},
      {"zoo_api_gateway", zoo_api_gateway_config},
      {"zoo_ecommerce_diurnal", zoo_ecommerce_config},
  };

  core::PerfReport sim_report;
  sim_report.suite = "sim";
  sim_report.git_sha = sha;
  double fig8_speedup = 0.0;
  for (const SimCase& c : kSimCases) {
    // Optimized first, baseline second, speedup from the same process so
    // machine noise cancels as much as it can.
    core::PerfScenario opt =
        run_sim_scenario(c.name, Mode::kOptimized, c.config());
    core::PerfScenario base =
        run_sim_scenario(c.name, Mode::kBaseline, c.config());
    const double speedup = base.events_per_sec > 0
                               ? opt.events_per_sec / base.events_per_sec
                               : 0.0;
    if (std::string_view(c.name) == "fig8_memory_sweep")
      fig8_speedup = speedup;
    std::fprintf(stderr,
                 "[bench_perf] %s: %.0f vs %.0f events/s (%.2fx), "
                 "%.2f vs %.2f allocs/event\n",
                 c.name, opt.events_per_sec, base.events_per_sec, speedup,
                 opt.allocations_per_event, base.allocations_per_event);
    sim_report.scenarios.push_back(std::move(opt));
    sim_report.scenarios.push_back(std::move(base));
    sim_report.speedups.push_back(
        {std::string(c.name) + "_events_per_sec_speedup", speedup});
  }
  sim_report.generated_unix_ms = core::unix_now_ms();
  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);  // best effort
  const std::string sim_path = opts.out_dir + "/BENCH_sim.json";
  if (!core::write_perf_report(sim_report, sim_path)) return 1;
  std::fprintf(stderr, "[bench_perf] wrote %s\n", sim_path.c_str());

  if (!opts.skip_live) {
    core::PerfReport live_report;
    live_report.suite = "live";
    live_report.git_sha = sha;
    // Tracing off, then on at the CI sampling rate: the ratio is the
    // observability tax on live throughput (1.0 = free).
    core::PerfScenario untraced =
        run_live_scenario("live_loopback_burst", 0.0);
    core::PerfScenario traced =
        run_live_scenario("live_loopback_traced_1pct", 0.01);
    const double trace_ratio =
        untraced.requests_per_sec > 0
            ? traced.requests_per_sec / untraced.requests_per_sec
            : 0.0;
    std::fprintf(stderr,
                 "[bench_perf] live tracing @1%%: %.0f vs %.0f req/s "
                 "(%.3fx)\n",
                 traced.requests_per_sec, untraced.requests_per_sec,
                 trace_ratio);
    live_report.scenarios.push_back(std::move(untraced));
    live_report.scenarios.push_back(std::move(traced));
    live_report.speedups.push_back(
        {"live_tracing_1pct_rps_ratio", trace_ratio});

    // Prefetch off, then on: the hit-rate ratio is the acceptance number
    // (>1.0 = the prediction service converts real misses), the rps ratio
    // is its throughput tax, and the waste ratio is the on-cell's share
    // of issued prefetches no client ever consumed.
    LivePrefetchCell pf_off =
        run_live_prefetch_cell("live_prefetch_off", false);
    LivePrefetchCell pf_on = run_live_prefetch_cell("live_prefetch_on", true);
    const double hit_gain = pf_off.worker_hit_rate > 0
                                ? pf_on.worker_hit_rate /
                                      pf_off.worker_hit_rate
                                : 0.0;
    const double pf_rps_ratio =
        pf_off.scenario.requests_per_sec > 0
            ? pf_on.scenario.requests_per_sec /
                  pf_off.scenario.requests_per_sec
            : 0.0;
    std::fprintf(stderr,
                 "[bench_perf] live prefetch on vs off: cache-hit %.3f vs "
                 "%.3f (%.3fx), %.0f vs %.0f req/s (%.3fx), issued=%llu "
                 "waste=%.3f\n",
                 pf_on.worker_hit_rate, pf_off.worker_hit_rate, hit_gain,
                 pf_on.scenario.requests_per_sec,
                 pf_off.scenario.requests_per_sec, pf_rps_ratio,
                 static_cast<unsigned long long>(pf_on.issued),
                 pf_on.waste_ratio);
    live_report.scenarios.push_back(std::move(pf_off.scenario));
    live_report.scenarios.push_back(std::move(pf_on.scenario));
    live_report.speedups.push_back(
        {"live_prefetch_cache_hit_ratio", hit_gain});
    live_report.speedups.push_back({"live_prefetch_rps_ratio", pf_rps_ratio});
    live_report.speedups.push_back(
        {"live_prefetch_waste_ratio", pf_on.waste_ratio});
    live_report.generated_unix_ms = core::unix_now_ms();
    const std::string live_path = opts.out_dir + "/BENCH_live.json";
    if (!core::write_perf_report(live_report, live_path)) return 1;
    std::fprintf(stderr, "[bench_perf] wrote %s\n", live_path.c_str());
    if (opts.max_trace_overhead > 0 && trace_ratio > 0 &&
        trace_ratio < 1.0 - opts.max_trace_overhead) {
      std::fprintf(stderr,
                   "[bench_perf] FAIL: tracing costs %.1f%% live req/s "
                   "(gate %.1f%%)\n",
                   100.0 * (1.0 - trace_ratio),
                   100.0 * opts.max_trace_overhead);
      return 1;
    }
    if (opts.min_prefetch_hit_gain > 0 && hit_gain > 0 &&
        hit_gain < opts.min_prefetch_hit_gain) {
      std::fprintf(stderr,
                   "[bench_perf] FAIL: prefetch cache-hit gain %.3fx is "
                   "below the --min-prefetch-hit-gain gate %.3fx\n",
                   hit_gain, opts.min_prefetch_hit_gain);
      return 1;
    }
  }

  if (opts.min_fig8_speedup > 0 && fig8_speedup < opts.min_fig8_speedup) {
    std::fprintf(stderr,
                 "[bench_perf] FAIL: fig8 events/sec speedup %.2fx is below "
                 "the --min-fig8-speedup gate %.2fx\n",
                 fig8_speedup, opts.min_fig8_speedup);
    return 1;
  }
  return 0;
}
