// Extension — demand-cache replacement policy: LRU vs GDSF.
//
// The paper's reference [20] extends Greedy-Dual-Size-Frequency [30] for
// mining-assisted caching. This bench swaps the back-ends' demand-region
// replacement between LRU and GDSF under LARD and PRORD at two memory
// pressures. GDSF favours small hot objects, which pays off exactly where
// Fig. 8 hurts most — scarce memory.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

void build(bench::Grid& grid) {
  for (const double fraction : {0.10, 0.30}) {
    for (const auto eviction :
         {cluster::DemandEviction::kLru, cluster::DemandEviction::kGdsf}) {
      for (const auto policy :
           {core::PolicyKind::kLard, core::PolicyKind::kPrord}) {
        core::ExperimentConfig config;
        config.workload = trace::cs_dept_spec();
        config.policy = policy;
        config.memory_fraction = fraction;
        config.params.demand_eviction = eviction;
        grid.add("mem=" + util::Table::num(fraction, 2) + "/" +
                     (eviction == cluster::DemandEviction::kGdsf ? "GDSF"
                                                                 : "LRU") +
                     "/" + core::policy_label(policy),
                 std::move(config));
      }
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Extension: LRU vs GDSF demand-cache replacement "
               "(cs-dept) ===\n\n";
  util::Table table({"memory", "replacement", "policy", "throughput(req/s)",
                     "hit-rate", "disk-reads"});
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    const auto slash = cell.label.find('/');
    const auto slash2 = cell.label.find('/', slash + 1);
    table.add_row({cell.label.substr(4, slash - 4),
                   cell.label.substr(slash + 1, slash2 - slash - 1), r.policy,
                   util::Table::num(r.throughput_rps(), 0),
                   util::Table::num(r.hit_rate(), 3),
                   std::to_string(r.metrics.disk_reads)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: GDSF's size-aware eviction lifts hit rates most "
               "under scarce memory.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("ext/cache_replacement", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("ext_cache_replacement");
  print(grid);
  return 0;
}
