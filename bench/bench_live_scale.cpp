// bench_live_scale: shard-scaling sweep for the sharded front end.
//
// Runs the full loopback cluster (scale::run_live_sharded) at each
// requested shard count on one port, records wall-clock req/s and
// latency percentiles per shard count into a BENCH_live.json perf
// report (docs/perf_schema.json, schema v2: every scenario carries its
// `shards`), and gates CI on the 4-vs-1-shard throughput ratio.
//
// The gate auto-skips when the host has fewer cores than the gated
// shard count — a 4-shard front end cannot beat 1 shard on a 1-core
// container, and a red bench there would only measure the machine.
// CI runs this on multi-core runners where the gate is enforced;
// --force-gate overrides the check for debugging.
//
// Usage:
//   bench_live_scale [--shards 1,2,4,8] [--requests N] [--backends N]
//                    [--gate RATIO] [--gate-shards N] [--force-gate]
//                    [--no-reuseport] [--out DIR]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/perf_report.h"
#include "net/live_cluster.h"
#include "scale/sharded_live.h"
#include "trace/models.h"

namespace {

using namespace prord;

struct Options {
  std::vector<std::uint32_t> shards = {1, 2, 4, 8};
  std::size_t requests = 40'000;
  std::uint32_t backends = 4;
  std::size_t concurrency = 32;
  double gate = 1.8;           ///< min req/s ratio at gate_shards vs 1
  std::uint32_t gate_shards = 4;
  bool force_gate = false;
  bool reuseport = true;
  std::string out_dir = ".";
};

std::vector<std::uint32_t> parse_shard_list(const char* arg) {
  std::vector<std::uint32_t> shards;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty())
        shards.push_back(
            static_cast<std::uint32_t>(std::strtoul(token.c_str(), nullptr, 10)));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return shards;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_live_scale: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--shards") {
      const char* v = next("--shards");
      if (!v) return false;
      opts.shards = parse_shard_list(v);
    } else if (a == "--requests") {
      const char* v = next("--requests");
      if (!v) return false;
      opts.requests = std::strtoull(v, nullptr, 10);
    } else if (a == "--backends") {
      const char* v = next("--backends");
      if (!v) return false;
      opts.backends = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--concurrency") {
      const char* v = next("--concurrency");
      if (!v) return false;
      opts.concurrency = std::strtoull(v, nullptr, 10);
    } else if (a == "--gate") {
      const char* v = next("--gate");
      if (!v) return false;
      opts.gate = std::strtod(v, nullptr);
    } else if (a == "--gate-shards") {
      const char* v = next("--gate-shards");
      if (!v) return false;
      opts.gate_shards =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--force-gate") {
      opts.force_gate = true;
    } else if (a == "--no-reuseport") {
      opts.reuseport = false;
    } else if (a == "--out") {
      const char* v = next("--out");
      if (!v) return false;
      opts.out_dir = v;
    } else {
      std::fprintf(stderr, "bench_live_scale: unknown flag %s\n", a.c_str());
      return false;
    }
  }
  if (opts.shards.empty() || opts.shards.front() != 1) {
    std::fprintf(stderr,
                 "bench_live_scale: --shards must start with 1 (the "
                 "baseline every ratio divides by)\n");
    return false;
  }
  return true;
}

net::LiveConfig scale_config(const Options& opts, std::uint32_t shards) {
  net::LiveConfig config;
  config.policy = core::PolicyKind::kPrord;
  config.backends = opts.backends;
  config.requests = opts.requests;
  config.concurrency = opts.concurrency;
  config.workload = trace::synthetic_spec();
  config.shards = shards;
  config.reuseport = opts.reuseport;
  config.load_threads = 0;  // one generator thread per shard
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  core::PerfReport report;
  report.suite = "live";
  report.git_sha = core::detect_git_sha();

  double baseline_rps = 0.0;
  double gate_rps = 0.0;
  for (const std::uint32_t shards : opts.shards) {
    const std::string name =
        "live_scale_" + std::to_string(shards) + "shard";
    std::fprintf(stderr, "[bench_live_scale] %s...\n", name.c_str());
    core::PerfScenario s;
    s.name = name;
    s.mode = shards == 1 ? "baseline" : "optimized";
    s.shards = shards;
    s.t_start_ms = core::unix_now_ms();
    const net::LiveRunResult result =
        scale::run_live_sharded(scale_config(opts, shards));
    s.t_end_ms = core::unix_now_ms();
    if (!result.started) {
      std::fprintf(stderr, "[bench_live_scale] FAIL: %s did not start\n",
                   name.c_str());
      return 1;
    }
    // Conservation is the correctness contract at every shard count:
    // issued == parsed and parsed == answered, summed across shards.
    if (!result.conserved() || !result.shard_conserved()) {
      std::fprintf(stderr,
                   "[bench_live_scale] FAIL: %s lost requests "
                   "(issued=%llu completed=%llu failed=%llu parsed=%llu)\n",
                   name.c_str(),
                   static_cast<unsigned long long>(result.load.issued),
                   static_cast<unsigned long long>(result.load.completed),
                   static_cast<unsigned long long>(result.load.failed),
                   static_cast<unsigned long long>(result.dist_requests));
      return 1;
    }
    s.wall_seconds = result.load.duration_s;
    s.requests = result.load.completed;
    s.requests_per_sec = result.load.throughput_rps();
    s.p50_response_ms =
        static_cast<double>(result.load.latency_hist.p50()) / 1000.0;
    s.p99_response_ms =
        static_cast<double>(result.load.latency_hist.p99()) / 1000.0;
    std::fprintf(stderr,
                 "[bench_live_scale] %s: %.0f req/s, p99 %.2f ms, "
                 "reuseport=%d\n",
                 name.c_str(), s.requests_per_sec, s.p99_response_ms,
                 result.reuseport_used ? 1 : 0);
    if (shards == 1) baseline_rps = s.requests_per_sec;
    if (shards == opts.gate_shards) gate_rps = s.requests_per_sec;
    if (shards > 1 && baseline_rps > 0) {
      report.speedups.push_back(
          {"live_scale_rps_" + std::to_string(shards) + "x_vs_1",
           s.requests_per_sec / baseline_rps});
    }
    report.scenarios.push_back(std::move(s));
  }

  report.generated_unix_ms = core::unix_now_ms();
  const std::string path = opts.out_dir + "/BENCH_live.json";
  if (!core::write_perf_report(report, path)) return 1;
  std::fprintf(stderr, "[bench_live_scale] wrote %s\n", path.c_str());

  // --- Scaling gate. ---
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  if (gate_rps <= 0 || baseline_rps <= 0) {
    std::fprintf(stderr,
                 "[bench_live_scale] gate skipped: no %u-shard scenario "
                 "in the sweep\n",
                 opts.gate_shards);
    return 0;
  }
  const double ratio = gate_rps / baseline_rps;
  if (cores < opts.gate_shards && !opts.force_gate) {
    std::fprintf(stderr,
                 "[bench_live_scale] gate skipped: %u cores < %u shards "
                 "(measured %.2fx, informational only)\n",
                 cores, opts.gate_shards, ratio);
    return 0;
  }
  if (ratio < opts.gate) {
    std::fprintf(stderr,
                 "[bench_live_scale] FAIL: %u shards give %.2fx req/s vs 1 "
                 "shard (gate %.2fx)\n",
                 opts.gate_shards, ratio, opts.gate);
    return 1;
  }
  std::fprintf(stderr,
               "[bench_live_scale] gate passed: %u shards give %.2fx req/s "
               "vs 1 shard (gate %.2fx)\n",
               opts.gate_shards, ratio, opts.gate);
  return 0;
}
