// Section 5.1 claim — "Our model is scalable to any number of backend
// servers and we show that results are consistent with 6 to 16 backend
// servers."
//
// Runs the synthetic trace with N in {6, 8, 10, 12, 14, 16} and checks the
// PRORD-over-LARD ordering holds at every size.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

void build(bench::Grid& grid) {
  for (const std::uint32_t n : {6u, 8u, 10u, 12u, 14u, 16u}) {
    for (const auto policy :
         {core::PolicyKind::kWrr, core::PolicyKind::kLard,
          core::PolicyKind::kPrord}) {
      core::ExperimentConfig config;
      config.workload = trace::synthetic_spec();
      config.policy = policy;
      config.params.num_backends = n;
      grid.add("n=" + std::to_string(n) + "/" + core::policy_label(policy),
               std::move(config));
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Scalability: 6 to 16 back-end servers (synthetic) "
               "===\n\n";
  util::Table table({"backends", "policy", "throughput(req/s)", "hit-rate",
                     "PRORD/LARD"});
  double lard = 0;
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    if (r.policy == "LARD") lard = r.throughput_rps();
    const std::string n = cell.label.substr(2, cell.label.find('/') - 2);
    table.add_row({n, r.policy, util::Table::num(r.throughput_rps(), 0),
                   util::Table::num(r.hit_rate(), 3),
                   r.policy == "PRORD" && lard > 0
                       ? util::Table::num(r.throughput_rps() / lard, 2)
                       : "-"});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: the WRR < LARD < PRORD ordering is "
               "consistent across cluster sizes.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto runner = bench::parse_runner_flags(argc, argv);
  const auto obs = bench::parse_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  grid.set_options(runner);
  grid.set_obs(obs);
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("scalability/6_to_16", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("scalability");
  grid.export_obs();
  print(grid);
  grid.print_replication_summary();
  return 0;
}
