// Fig. 7 — Throughput Comparison.
//
// The paper's headline figure: throughput of WRR, LARD, Ext-LARD-PHTTP and
// PRORD on the CS-department, WorldCup'98 and synthetic traces. Expected
// shape: PRORD on top with a 10-45% margin over LARD; WRR at the bottom on
// locality-sensitive traces.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

constexpr core::PolicyKind kPolicies[] = {
    core::PolicyKind::kWrr, core::PolicyKind::kLard,
    core::PolicyKind::kExtLardPhttp, core::PolicyKind::kPrord};

void build(bench::Grid& grid) {
  const std::vector<trace::WorkloadSpec> specs = {
      trace::cs_dept_spec(), trace::world_cup_spec(0.25),
      trace::synthetic_spec()};
  for (const auto& spec : specs) {
    for (const auto policy : kPolicies) {
      core::ExperimentConfig config;
      config.workload = spec;
      config.policy = policy;
      if (std::string(spec.name) == "worldcup98")
        config.target_offered_rps = 60'000;  // flash crowd saturates higher
      grid.add(std::string(spec.name) + "/" + core::policy_label(policy),
               std::move(config));
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Fig. 7: Throughput Comparison ===\n\n";
  util::Table table({"trace", "policy", "throughput(req/s)", "vs-LARD",
                     "hit-rate", "requests"});
  double lard_tput = 0;
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    if (r.policy == "LARD") lard_tput = r.throughput_rps();
    const double ratio = lard_tput > 0 ? r.throughput_rps() / lard_tput : 0;
    table.add_row({r.workload, r.policy,
                   util::Table::num(r.throughput_rps(), 0),
                   r.policy == "WRR" ? "-" : util::Table::num(ratio, 2),
                   util::Table::num(r.hit_rate(), 3),
                   std::to_string(r.num_requests)});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: PRORD outperforms LARD by 10-45%; WRR trails "
               "on locality-sensitive traces.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto runner = bench::parse_runner_flags(argc, argv);
  const auto obs = bench::parse_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  grid.set_options(runner);
  grid.set_obs(obs);
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("fig7/throughput_grid", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("fig7_throughput");
  grid.export_obs();
  print(grid);
  grid.print_replication_summary();
  return 0;
}
