// Section 5.2 claim — "Generally, about 30% of the website's data can be
// accommodated in the backend servers memory at any given point of time.
// This assumption yields 85% hit rates with LARD and 10% boost with our
// scheme."
//
// Runs every policy on each trace at the 30% memory point and reports the
// back-end cache hit rates plus the PRORD boost over LARD.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

void build(bench::Grid& grid) {
  const std::vector<trace::WorkloadSpec> specs = {
      trace::cs_dept_spec(), trace::world_cup_spec(0.25),
      trace::synthetic_spec()};
  for (const auto& spec : specs) {
    for (const auto policy :
         {core::PolicyKind::kWrr, core::PolicyKind::kLard,
          core::PolicyKind::kPrord}) {
      core::ExperimentConfig config;
      config.workload = spec;
      config.policy = policy;
      config.memory_fraction = 0.30;
      grid.add(std::string(spec.name) + "/" + core::policy_label(policy),
               std::move(config));
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Hit rates at 30% of site data in memory ===\n\n";
  util::Table table({"trace", "policy", "hit-rate", "boost-over-LARD(pp)",
                     "disk-reads", "prefetch-reads"});
  double lard = 0;
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    if (r.policy == "LARD") lard = r.hit_rate();
    table.add_row({r.workload, r.policy, util::Table::num(r.hit_rate(), 3),
                   r.policy == "PRORD"
                       ? util::Table::num(100.0 * (r.hit_rate() - lard), 1)
                       : "-",
                   std::to_string(r.metrics.disk_reads),
                   std::to_string(r.metrics.prefetch_reads)});
  }
  table.print(std::cout);
  std::cout << "\nPaper claim: LARD ~85% hit rate at this point, PRORD "
               "~10 percentage points higher.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("hit_rates/grid", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("hit_rates");
  print(grid);
  return 0;
}
