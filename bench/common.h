// Shared plumbing for the reproduction benches.
//
// Every bench binary reproduces one table/figure of the paper: it runs the
// relevant ExperimentConfig grid, prints the system parameters it used
// (Table 1 echo) and a paper-style result table. Wall-clock timing of the
// simulations themselves is reported through google-benchmark so the
// standard bench runner surfaces them uniformly.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/obs_export.h"
#include "core/parallel_runner.h"
#include "util/string_util.h"
#include "util/table.h"

namespace prord::bench {

/// Extracts the parallel-runner flags (--jobs N, --replications N,
/// --base-seed S) from argv before google-benchmark sees it, compacting
/// the remaining arguments in place. Call ahead of benchmark::Initialize.
inline core::RunnerOptions parse_runner_flags(int& argc, char** argv) {
  core::RunnerOptions options;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--jobs") == 0 && value) {
      options.jobs = static_cast<unsigned>(std::atoi(value));
      ++i;
    } else if (std::strcmp(arg, "--replications") == 0 && value) {
      options.replications = static_cast<std::size_t>(std::atoll(value));
      ++i;
    } else if (std::strcmp(arg, "--base-seed") == 0 && value) {
      options.base_seed = static_cast<std::uint64_t>(std::atoll(value));
      ++i;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  options.progress = [](const std::string& label, std::size_t rep) {
    std::cerr << "  [done] " << label << " (rep " << rep << ")\n";
  };
  return options;
}

/// Extracts the observability flags (--metrics-out, --series-out,
/// --trace-out, --trace-sample-rate, --sample-interval-ms) from argv
/// before google-benchmark sees it, compacting the remaining arguments in
/// place. Pass the result to Grid::set_obs.
inline core::ObsExportOptions parse_obs_flags(int& argc, char** argv) {
  core::ObsExportOptions options;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--metrics-out") == 0 && value) {
      options.metrics_out = value;
      ++i;
    } else if (std::strcmp(arg, "--series-out") == 0 && value) {
      options.series_out = value;
      ++i;
    } else if (std::strcmp(arg, "--trace-out") == 0 && value) {
      options.trace_out = value;
      ++i;
    } else if (std::strcmp(arg, "--trace-sample-rate") == 0 && value) {
      options.trace_sample_rate = std::atof(value);
      ++i;
    } else if (std::strcmp(arg, "--sample-interval-ms") == 0 && value) {
      options.sample_interval = sim::msec(std::atof(value));
      ++i;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return options;
}

/// Prints the Table 1 parameter block the run used.
inline void print_params(const cluster::ClusterParams& p,
                         std::ostream& os = std::cout) {
  util::Table t({"parameter", "value"});
  t.add_row({"back-end servers", std::to_string(p.num_backends)});
  t.add_row({"connection latency", std::to_string(p.connection_latency) + " us"});
  t.add_row({"TCP handoff latency", std::to_string(p.tcp_handoff) + " us/handoff"});
  t.add_row({"handoff distributor CPU", std::to_string(p.fe_handoff_cpu) + " us"});
  t.add_row({"disk latency", std::to_string(p.disk_fixed / 1000) + " ms + " +
                                 std::to_string(p.disk_per_kb) + " us/KB"});
  t.add_row({"interconnect", "100 Mbps switched (" +
                                 std::to_string(p.net_per_kb) + " us/KB)"});
  t.add_row({"power states", "on 100% / hibernate 5% / off 0%"});
  t.print(os);
  os << '\n';
}

/// Formats RunMetrics::phases as a compact per-phase column, e.g.
/// "0.61|0.48|0.55" for &core::PhaseStats::hit_rate — the drifting-trace
/// benches show how a metric moves across trace::DriftSpec phases without
/// one table per phase. Returns "-" when per-phase accounting was off
/// (PlayerOptions::phase_starts empty).
inline std::string phase_breakdown(const core::RunMetrics& metrics,
                                   double (core::PhaseStats::*stat)() const,
                                   int precision = 2) {
  if (metrics.phases.empty()) return "-";
  std::string out;
  for (const auto& phase : metrics.phases) {
    if (!out.empty()) out += '|';
    out += util::Table::num((phase.*stat)(), precision);
  }
  return out;
}

/// One named experiment cell; `run()` executes it and remembers the result.
struct Cell {
  std::string label;
  core::ExperimentConfig config;
  core::ExperimentResult result;
};

/// Runs all cells through the deterministic parallel experiment engine,
/// each grid wrapped in a google-benchmark timing entry, then invokes
/// `print` with the populated results.
class Grid {
 public:
  void add(std::string label, core::ExperimentConfig config) {
    cells_.push_back(Cell{std::move(label), std::move(config), {}});
  }

  std::vector<Cell>& cells() { return cells_; }

  /// Per-cell replication results (populated by run()).
  const std::vector<core::CellResult>& results() const { return results_; }

  void set_options(core::RunnerOptions options) {
    options_ = std::move(options);
  }
  const core::RunnerOptions& options() const { return options_; }

  /// Selects observability exports; run() enables the matching per-run
  /// collection on every cell, export_obs() writes the artifacts.
  void set_obs(core::ObsExportOptions obs) { obs_ = std::move(obs); }
  const core::ObsExportOptions& obs() const { return obs_; }

  /// Runs every (cell, replication) task across options().jobs workers.
  /// Each replication runs once (simulations are deterministic; repeating
  /// them would only re-measure wall-clock noise). The legacy per-cell
  /// `result` field mirrors replication 0 so the single-replication paper
  /// tables are unchanged by the engine.
  void run() {
    std::vector<core::ExperimentCell> grid;
    grid.reserve(cells_.size());
    const core::ObsOptions per_run = core::to_obs_options(obs_);
    for (const auto& cell : cells_) {
      grid.push_back(core::ExperimentCell{cell.label, cell.config});
      grid.back().config.obs = per_run;
    }
    results_ = core::run_cells(grid, options_);
    for (std::size_t i = 0; i < cells_.size(); ++i)
      cells_[i].result = results_[i].primary();
  }

  /// Writes the selected observability artifacts for the last run().
  /// No-op when no sink was requested.
  void export_obs() const {
    if (obs_.any()) core::export_observability(results_, obs_);
  }

  /// Prints the mean ± 95% CI aggregate table when more than one
  /// replication ran; a single replication has no spread to report.
  void print_replication_summary(std::ostream& os = std::cout) const {
    if (results_.empty() || results_.front().replications.size() < 2) return;
    os << "\n--- Replication summary (mean over "
       << results_.front().replications.size() << " seeded replications) "
          "---\n\n";
    core::summary_table(results_).print(os);
  }

  /// Dumps raw per-cell results for external plotting. Called by every
  /// bench when $PRORD_BENCH_CSV names a directory; `name` becomes
  /// <dir>/<name>.csv.
  void maybe_write_csv(const std::string& name) const {
    const char* dir = std::getenv("PRORD_BENCH_CSV");
    if (!dir || !*dir) return;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return;
    }
    out << "label,workload,policy,throughput_rps,hit_rate,mean_resp_ms,"
           "p99_resp_ms,dispatches_per_req,handoffs,disk_reads,"
           "prefetch_reads,completed\n";
    for (const auto& cell : cells_) {
      const auto& r = cell.result;
      out << cell.label << ',' << r.workload << ',' << r.policy << ','
          << r.throughput_rps() << ',' << r.hit_rate() << ','
          << r.metrics.mean_response_ms() << ','
          << static_cast<double>(r.metrics.response_hist.p99()) / 1000.0
          << ',' << r.dispatch_frequency() << ',' << r.metrics.handoffs
          << ',' << r.metrics.disk_reads << ',' << r.metrics.prefetch_reads
          << ',' << r.metrics.completed << '\n';
    }
    std::cerr << "wrote " << path << '\n';
  }

 private:
  std::vector<Cell> cells_;
  std::vector<core::CellResult> results_;
  core::RunnerOptions options_;
  core::ObsExportOptions obs_;
};

/// Registers a benchmark that runs `grid.run()` once and reports aggregate
/// counters; call from main() before RunSpecifiedBenchmarks.
inline void register_grid_benchmark(const char* name, Grid& grid) {
  benchmark::RegisterBenchmark(name, [&grid](benchmark::State& state) {
    for (auto _ : state) grid.run();
    double total_requests = 0;
    for (const auto& cell : grid.cells())
      total_requests += static_cast<double>(cell.result.num_requests);
    state.counters["simulated_requests"] = total_requests;
  })->Iterations(1)->Unit(benchmark::kMillisecond);
}

}  // namespace prord::bench
