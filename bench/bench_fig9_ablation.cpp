// Fig. 9 — Throughput Comparison for Individual Enhancements (CS trace).
//
// Turns PRORD's three mechanisms on one at a time:
//   LARD-bundle        — embedded-object (bundle) forwarding,
//   LARD-distribution  — popularity-driven replication (Algorithm 3),
//   LARD-prefetch-nav  — navigation-pattern prefetching (Algorithms 1-2),
// against plain LARD and full PRORD. The paper finds prefetch-nav the
// strongest single enhancement and PRORD (the combination) best overall.
//
// An extension table sweeps Algorithm 2's confidence threshold — the
// design knob DESIGN.md calls out.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

void build(bench::Grid& grid, bench::Grid& sweep) {
  for (const auto policy :
       {core::PolicyKind::kLard, core::PolicyKind::kLardBundle,
        core::PolicyKind::kLardDistribution, core::PolicyKind::kLardPrefetchNav,
        core::PolicyKind::kPrord}) {
    core::ExperimentConfig config;
    config.workload = trace::cs_dept_spec();
    config.policy = policy;
    grid.add(core::policy_label(policy), std::move(config));
  }
  for (const double threshold : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    core::ExperimentConfig config;
    config.workload = trace::cs_dept_spec();
    config.policy = core::PolicyKind::kLardPrefetchNav;
    config.prefetch_threshold = threshold;
    sweep.add("threshold=" + util::Table::num(threshold, 1),
              std::move(config));
  }
  core::ExperimentConfig adaptive;
  adaptive.workload = trace::cs_dept_spec();
  adaptive.policy = core::PolicyKind::kLardPrefetchNav;
  adaptive.adaptive_threshold = true;
  sweep.add("threshold=adapt", std::move(adaptive));
}

void print(bench::Grid& grid, bench::Grid& sweep) {
  std::cout << "\n=== Fig. 9: Individual Enhancements (cs-dept) ===\n\n";
  util::Table table({"scheme", "throughput(req/s)", "vs-LARD", "hit-rate",
                     "dispatches/req", "mean-resp(ms)"});
  double lard = 0;
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    if (r.policy == "LARD") lard = r.throughput_rps();
    table.add_row({r.policy, util::Table::num(r.throughput_rps(), 0),
                   lard > 0 ? util::Table::num(r.throughput_rps() / lard, 2)
                            : "-",
                   util::Table::num(r.hit_rate(), 3),
                   util::Table::num(r.dispatch_frequency(), 3),
                   util::Table::num(r.metrics.mean_response_ms(), 1)});
  }
  table.print(std::cout);

  std::cout << "\n--- Extension: Algorithm 2 confidence-threshold sweep "
               "(LARD-prefetch-nav) ---\n\n";
  util::Table st({"threshold", "throughput(req/s)", "hit-rate",
                  "prefetches-triggered"});
  for (const auto& cell : sweep.cells()) {
    const auto& r = cell.result;
    st.add_row({cell.label.substr(10), util::Table::num(r.throughput_rps(), 0),
                util::Table::num(r.hit_rate(), 3),
                std::to_string(r.prefetches_triggered)});
  }
  st.print(std::cout);
  std::cout << "\nPaper shape: prefetch-nav is the strongest single "
               "enhancement; the full combination (PRORD) is best overall.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto runner = bench::parse_runner_flags(argc, argv);
  const auto obs = bench::parse_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::Grid grid, sweep;
  grid.set_options(runner);
  // Observability exports cover the ablation grid only; the threshold
  // sweep reuses the same policies and would double every series.
  grid.set_obs(obs);
  sweep.set_options(runner);
  build(grid, sweep);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("fig9/ablation", grid);
  bench::register_grid_benchmark("fig9/threshold_sweep", sweep);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("fig9_ablation");
  sweep.maybe_write_csv("fig9_threshold_sweep");
  grid.export_obs();
  print(grid, sweep);
  grid.print_replication_summary();
  sweep.print_replication_summary();
  return 0;
}
