// Availability under failures — crash-and-rejoin comparison.
//
// Not a paper figure: the paper asserts (Section 5) that proactive
// replication "increases the availability of the service" without
// measuring it. This bench quantifies the claim. One back-end crashes
// mid-run and rejoins with a cold cache; every headline policy plays the
// same trace under the same deterministic fault schedule.
//
// What to look for:
//   - goodput (successful req/s) and failed-request counts during the
//     outage: content-blind WRR only loses the in-flight requests, while
//     locality policies also lose the dead node's cache partition;
//   - post-rejoin re-warm: PRORD's on_server_up replication round refills
//     the rejoined cache over the interconnect (~80 us/KB), so its re-warm
//     window is strictly shorter than PRORD-norepl, which refills the same
//     cache through demand misses on the disk (~10 ms + 40 us/KB each) —
//     the availability win the paper claims for Algorithm 3.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

// One third in, server 1 dies; it rejoins a quarter of the trace later.
// Times are trace wall-clock; the runner compresses them with the
// arrivals (cs-dept spans ~4 h, so the schedule scales with it).
constexpr const char* kSchedule = "crash@3600s:srv1,restart@7200s:srv1";

constexpr core::PolicyKind kPolicies[] = {
    core::PolicyKind::kWrr,           core::PolicyKind::kLard,
    core::PolicyKind::kExtLardPhttp,  core::PolicyKind::kPrord,
    core::PolicyKind::kPrordNoReplication,
};

void build(bench::Grid& grid) {
  for (const auto policy : kPolicies) {
    core::ExperimentConfig config;
    config.workload = trace::cs_dept_spec();
    config.policy = policy;
    config.faults.plan = kSchedule;
    config.faults.heartbeat_interval = sim::sec(30.0);
    config.faults.max_retries = 3;
    grid.add(core::policy_label(policy), std::move(config));
  }
}

std::string rewarm_cell(const core::ExperimentResult& r) {
  for (const auto& episode : r.rewarms)
    if (episode.completed())
      return util::Table::num(sim::to_seconds(episode.duration()), 2) + " s";
  return r.rewarms.empty() ? "-" : "unfinished";
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Availability under a crash-and-rejoin fault "
               "(cs-dept, " << kSchedule << ") ===\n\n";
  util::Table table({"policy", "goodput(req/s)", "p99-resp(ms)", "failed",
                     "retries", "redispatches", "success", "detect(ms)",
                     "rewarm"});
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    table.add_row(
        {r.policy, util::Table::num(r.throughput_rps(), 0),
         util::Table::num(
             static_cast<double>(r.metrics.response_hist.p99()) / 1000.0, 2),
         std::to_string(r.metrics.failed), std::to_string(r.metrics.retries),
         std::to_string(r.metrics.redispatches),
         util::Table::num(r.metrics.success_ratio(), 4),
         util::Table::num(r.fault_stats.detection_latency_us.mean() / 1000.0,
                          1),
         rewarm_cell(r)});
  }
  table.print(std::cout);
  std::cout << "\nHeadline: PRORD's rejoin re-warm (replication push over "
               "the interconnect) is strictly shorter than PRORD-norepl's "
               "demand-miss refill through the disk.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto runner = bench::parse_runner_flags(argc, argv);
  const auto obs = bench::parse_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  grid.set_options(runner);
  grid.set_obs(obs);
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("faults/crash_rejoin", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("fault_tolerance");
  grid.export_obs();
  print(grid);
  grid.print_replication_summary();
  return 0;
}
