// Section 5.2 metric — Average Response Time.
//
// The paper monitors Average Response Time alongside throughput. This
// bench runs every policy at a moderate offered load (clearly below the
// strongest policy's capacity) so latency reflects service quality rather
// than pure queueing collapse, and reports the distribution.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

void build(bench::Grid& grid) {
  const std::vector<trace::WorkloadSpec> specs = {trace::cs_dept_spec(),
                                                  trace::synthetic_spec()};
  for (const auto& spec : specs) {
    for (const auto policy :
         {core::PolicyKind::kWrr, core::PolicyKind::kLard,
          core::PolicyKind::kExtLardPhttp, core::PolicyKind::kPrord}) {
      core::ExperimentConfig config;
      config.workload = spec;
      config.policy = policy;
      config.target_offered_rps = 3'000;  // moderate, sub-saturation
      grid.add(std::string(spec.name) + "/" + core::policy_label(policy),
               std::move(config));
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Average Response Time (offered load 3,000 req/s) "
               "===\n\n";
  util::Table table({"trace", "policy", "mean(ms)", "p50(ms)", "p90(ms)",
                     "p99(ms)", "hit-rate"});
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    const auto& h = r.metrics.response_hist;
    table.add_row(
        {r.workload, r.policy, util::Table::num(r.metrics.mean_response_ms(), 2),
         util::Table::num(static_cast<double>(h.p50()) / 1000.0, 2),
         util::Table::num(static_cast<double>(h.p90()) / 1000.0, 2),
         util::Table::num(static_cast<double>(h.p99()) / 1000.0, 2),
         util::Table::num(r.hit_rate(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: PRORD's prefetching hides disk latency, so "
               "its mean and tail response times are the lowest.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("response_time/grid", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("response_time");
  print(grid);
  return 0;
}
