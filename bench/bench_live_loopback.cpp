// Live loopback throughput — the socket-path counterpart of Fig. 7.
//
// Drives the real epoll cluster (src/net/) instead of the simulator: N
// back-end worker threads + distributor + closed-loop load generator, all
// over 127.0.0.1, one run per policy. Reported req/s is wall-clock
// saturation throughput of the whole process pipeline, so absolute
// numbers depend on the host; the interesting output is the *relative*
// ordering and the dispatch/hit-rate columns, which mirror the sim
// tables.
//
// Flags: --requests N (default 50000), --backends N (default 4),
//        --concurrency N (default 32), --pipeline N (default 4),
//        --trace-sample-rate R (default 0), --trace-out FILE (per-policy
//        spans land at FILE.<policy>, ready for tools/trace_report).
#include <cstring>
#include <iostream>
#include <string>

#include "net/live_cluster.h"
#include "util/table.h"

namespace {

using namespace prord;

constexpr core::PolicyKind kPolicies[] = {
    core::PolicyKind::kWrr, core::PolicyKind::kLard,
    core::PolicyKind::kExtLardPhttp, core::PolicyKind::kPress,
    core::PolicyKind::kPrord};

}  // namespace

int main(int argc, char** argv) {
  net::LiveConfig base;
  std::string trace_out;
  base.requests = 50'000;
  base.concurrency = 32;
  base.pipeline_depth = 4;
  base.backends = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--requests")
      base.requests = std::stoull(next());
    else if (arg == "--backends")
      base.backends = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--concurrency")
      base.concurrency = std::stoull(next());
    else if (arg == "--pipeline")
      base.pipeline_depth = std::stoull(next());
    else if (arg == "--trace-sample-rate")
      base.trace_sample_rate = std::stod(next());
    else if (arg == "--trace-out")
      trace_out = next();
  }
  if (!trace_out.empty() && base.trace_sample_rate <= 0.0)
    base.trace_sample_rate = 1.0;

  std::cout << "\n=== Live loopback: throughput across policies ===\n\n";
  util::Table table({"policy", "req/s", "p50(us)", "p99(us)", "hit-rate",
                     "dispatch/req", "conserved"});
  bool ok = true;
  for (const auto policy : kPolicies) {
    net::LiveConfig cfg = base;
    cfg.policy = policy;
    if (!trace_out.empty())
      cfg.trace_out = trace_out + "." + core::policy_label(policy);
    std::cerr << "live run: " << core::policy_label(policy) << "...\n";
    const net::LiveRunResult r = net::run_live(cfg);
    if (!r.started) {
      std::cerr << core::policy_label(policy) << ": setup failed\n";
      ok = false;
      continue;
    }
    const double dispatch_per_req =
        r.routed ? static_cast<double>(r.dispatches) /
                       static_cast<double>(r.routed)
                 : 0.0;
    table.add_row({r.policy, util::Table::num(r.load.throughput_rps(), 0),
                   std::to_string(r.load.latency_hist.p50()),
                   std::to_string(r.load.latency_hist.p99()),
                   util::Table::num(r.worker_hit_rate(), 3),
                   util::Table::num(dispatch_per_req, 3),
                   r.conserved() ? "yes" : "NO"});
    if (cfg.trace_sample_rate > 0.0)
      std::cerr << r.policy << ": " << r.trace_spans << " spans traced\n";
    ok = ok && r.conserved() && r.load.completed > 0;
  }
  table.print(std::cout);
  std::cout << "\nSame policy objects as the simulator (core::RoutingCore); "
               "absolute req/s is host-dependent.\n";
  return ok ? 0 : 1;
}
