// Adaptation under workload drift (docs/ADAPTATION.md).
//
// Beyond the paper: its mining is a nightly offline pass, but the traces it
// targets (WorldCup'98) drift — yesterday's hot pages go cold at every day
// boundary. This bench rotates the synthetic workload's hot set across
// phases (trace::DriftSpec) and compares three PRORD variants:
//   static    — the paper's regime: one offline model, online counters only;
//   adaptive  — online re-mining (src/adapt): stream sessionizer + epoch
//               re-mine + warm-started, trace-clock-aged models;
//   oracle    — per-phase models pre-mined from the training trace and
//               published at phase boundaries for free (upper bound).
// Expected shape: under harsh drift, adaptive beats static on throughput
// and prediction hit-rate and recovers a good share of the oracle's
// margin; under mild drift the static model's own online learning is
// already close, so the gap narrows.
// The workload-zoo scenarios (src/zoo/) ride along as extra grid cells:
// each builtin profile runs static vs adaptive, so the fitted drift
// (cdn-flash's hot-set rotation, ecommerce-diurnal's slow catalog shift,
// api-gateway's stationarity) is exercised by the same adaptation stack.
#include "common.h"

#include "trace/models.h"
#include "zoo/scenario_registry.h"

namespace {

using namespace prord;

struct Scenario {
  const char* name;
  trace::DriftSpec drift;
};

const Scenario kScenarios[] = {
    {"drift-harsh",
     {.phases = 8, .rotation = 0.6, .flash_multiplier = 3.0,
      .flash_duration_sec = 200.0}},
    {"drift-mild", {.phases = 4, .rotation = 0.4}},
};

core::AdaptOptions adaptive_options() {
  core::AdaptOptions adapt;
  adapt.enabled = true;
  // Swept on the harsh scenario: epochs much shorter than a phase churn
  // placement (every publish reshuffles the rank table) without learning
  // anything the online counters don't already know, and popularity
  // decay around 2-3x the phase length tracks the hot set without
  // over-forgetting. Predictor aging stays off (AdaptOptions default):
  // the warm-started clone keeps learning online, and any eviction or
  // flattening of its counts costs more coverage than staleness costs
  // accuracy.
  adapt.epoch = sim::sec(600.0);
  adapt.window = sim::sec(500.0);
  adapt.popularity_halflife_s = 1200.0;
  return adapt;
}

void build(bench::Grid& grid) {
  for (const auto& scenario : kScenarios) {
    core::ExperimentConfig base;
    base.workload = trace::synthetic_spec();
    base.workload.gen.drift = scenario.drift;
    base.policy = core::PolicyKind::kPrord;

    core::ExperimentConfig adaptive = base;
    adaptive.adapt = adaptive_options();

    core::ExperimentConfig oracle = base;
    oracle.adapt.oracle = true;

    grid.add(std::string(scenario.name) + "/static", std::move(base));
    grid.add(std::string(scenario.name) + "/adaptive", std::move(adaptive));
    grid.add(std::string(scenario.name) + "/oracle", std::move(oracle));
  }

  // Workload-zoo scenarios: fitted profiles instead of hand-set DriftSpecs.
  // Request counts are trimmed so the zoo cells cost about as much as one
  // drift cell each.
  for (const auto& name : zoo::builtin_scenario_names()) {
    core::ExperimentConfig base;
    base.workload = zoo::to_workload_spec(zoo::builtin_profile(name));
    base.workload.gen.target_requests =
        std::min<std::size_t>(base.workload.gen.target_requests, 30'000);
    base.policy = core::PolicyKind::kPrord;

    core::ExperimentConfig adaptive = base;
    adaptive.adapt = adaptive_options();

    grid.add("zoo-" + name + "/static", std::move(base));
    grid.add("zoo-" + name + "/adaptive", std::move(adaptive));
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Adaptation under workload drift ===\n\n";
  util::Table table({"scenario", "throughput(req/s)", "vs-static",
                     "hit-rate", "pred-hit", "remines",
                     "phase hit-rates"});
  double static_tput = 0;
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    const bool is_static = cell.label.ends_with("/static");
    if (is_static) static_tput = r.throughput_rps();
    const double ratio =
        static_tput > 0 ? r.throughput_rps() / static_tput : 0;
    table.add_row({cell.label, util::Table::num(r.throughput_rps(), 0),
                   is_static ? "-" : util::Table::num(ratio, 2),
                   util::Table::num(r.hit_rate(), 3),
                   util::Table::num(r.prediction_hit_rate(), 3),
                   std::to_string(r.adapt_stats.remines),
                   bench::phase_breakdown(r.metrics,
                                          &core::PhaseStats::hit_rate)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: adaptive > static on throughput and "
               "prediction hit-rate under harsh drift,\nwithin a small "
               "margin of the per-phase oracle; mild drift narrows the "
               "gap.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto runner = bench::parse_runner_flags(argc, argv);
  const auto obs = bench::parse_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  grid.set_options(runner);
  grid.set_obs(obs);
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("adaptation/drift_grid", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("adaptation");
  grid.export_obs();
  print(grid);
  grid.print_replication_summary();
  return 0;
}
