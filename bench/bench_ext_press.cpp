// Extension — PRESS-style cooperative caching ([32]) vs the paper's
// policies.
//
// PRESS recovers locality at the back: content-blind connection spreading
// plus miss-time pulls from the owning node's memory over the user-level
// network. It removes the front-end bottleneck like PRORD does, but pays
// an interconnect transfer per remote hit where PRORD pays nothing
// (proactive placement put the bytes there ahead of the request).
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

void build(bench::Grid& grid) {
  const std::vector<trace::WorkloadSpec> specs = {trace::cs_dept_spec(),
                                                  trace::synthetic_spec()};
  for (const auto& spec : specs) {
    for (const auto policy :
         {core::PolicyKind::kWrr, core::PolicyKind::kLard,
          core::PolicyKind::kPress, core::PolicyKind::kPrord}) {
      core::ExperimentConfig config;
      config.workload = spec;
      config.policy = policy;
      grid.add(std::string(spec.name) + "/" + core::policy_label(policy),
               std::move(config));
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Extension: PRESS [32] cooperative caching ===\n\n";
  util::Table table({"trace", "policy", "throughput(req/s)", "hit-rate",
                     "mean-resp(ms)", "interconnect-busy(s)"});
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    table.add_row({r.workload, r.policy,
                   util::Table::num(r.throughput_rps(), 0),
                   util::Table::num(r.hit_rate(), 3),
                   util::Table::num(r.metrics.mean_response_ms(), 1),
                   util::Table::num(
                       sim::to_seconds(r.metrics.interconnect_busy), 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: PRESS lands between LARD and PRORD — no "
               "dispatch/handoff tax, but remote hits keep paying the "
               "interconnect where PRORD's proactive placement does not.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("ext/press", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("ext_press");
  print(grid);
  return 0;
}
