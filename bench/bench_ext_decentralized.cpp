// Extension — decentralized content-aware distribution (Aron et al. [4]).
//
// Section 2.1's criticism of the scalable-distribution architecture:
// parallelizing the distributors relieves the front-end CPU, but every
// request still pays a dispatch (now with a network round trip to the one
// central dispatcher) — "the overhead to dispatch all the requests can be
// very high". This bench scales LARD's distributor count and compares
// against single-front-end PRORD, which removes the dispatches instead of
// parallelizing them.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

void build(bench::Grid& grid) {
  for (const std::uint32_t fes : {1u, 2u, 4u}) {
    core::ExperimentConfig config;
    config.workload = trace::synthetic_spec();
    config.policy = core::PolicyKind::kLard;
    config.params.num_frontends = fes;
    grid.add("LARD x" + std::to_string(fes) + " distributors",
             std::move(config));
  }
  core::ExperimentConfig prord_config;
  prord_config.workload = trace::synthetic_spec();
  prord_config.policy = core::PolicyKind::kPrord;
  grid.add("PRORD x1 distributor", std::move(prord_config));
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Extension: decentralized distributors [4] vs PRORD "
               "(synthetic) ===\n\n";
  util::Table table({"configuration", "throughput(req/s)", "mean-resp(ms)",
                     "dispatches/req", "fe-busy(s)"});
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    table.add_row({cell.label, util::Table::num(r.throughput_rps(), 0),
                   util::Table::num(r.metrics.mean_response_ms(), 1),
                   util::Table::num(r.dispatch_frequency(), 3),
                   util::Table::num(
                       sim::to_seconds(r.metrics.frontend_busy), 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: extra distributors help LARD until the disk "
               "binds, but every request still dispatches; PRORD removes "
               "the dispatches with one distributor.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("ext/decentralized", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("ext_decentralized");
  print(grid);
  return 0;
}
