// Fig. 6 — Frequency of Dispatches.
//
// Counts dispatcher contacts under LARD vs PRORD on each trace. PRORD's
// embedded-object forwarding and prefetch registry answer most requests
// without the dispatcher, which is the figure's point.
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

void build(bench::Grid& grid) {
  const std::vector<trace::WorkloadSpec> specs = {
      trace::cs_dept_spec(), trace::world_cup_spec(0.25),
      trace::synthetic_spec()};
  for (const auto& spec : specs) {
    for (const auto policy :
         {core::PolicyKind::kLard, core::PolicyKind::kPrord}) {
      core::ExperimentConfig config;
      config.workload = spec;
      config.policy = policy;
      grid.add(std::string(spec.name) + "/" + core::policy_label(policy),
               std::move(config));
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Fig. 6: Frequency of Dispatches ===\n\n";
  util::Table table({"trace", "policy", "requests", "dispatches",
                     "dispatches/request", "bundle-forwards"});
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    table.add_row({r.workload, r.policy, std::to_string(r.num_requests),
                   std::to_string(r.metrics.dispatches),
                   util::Table::num(r.dispatch_frequency(), 3),
                   std::to_string(r.bundle_forwards)});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: PRORD's dispatch count collapses relative to "
               "LARD (embedded objects are forwarded, not dispatched).\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto runner = bench::parse_runner_flags(argc, argv);
  const auto obs = bench::parse_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  grid.set_options(runner);
  grid.set_obs(obs);
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("fig6/dispatch_grid", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("fig6_dispatch_frequency");
  grid.export_obs();
  print(grid);
  grid.print_replication_summary();
  return 0;
}
