// Extension — dynamic contents (the paper's Section 6 future work).
//
// Sweeps the fraction of dynamic (CGI-style, CPU-generated, uncacheable)
// pages on the synthetic site and compares WRR, LARD and PRORD. As the
// dynamic share grows, cache locality matters less and CPU load balance
// more; PRORD's dynamic-aware routing sends dynamic pages to the
// least-loaded back-end while keeping the proactive machinery for the
// static content (every dynamic page still has a static bundle).
#include "common.h"

#include "trace/models.h"

namespace {

using namespace prord;

constexpr double kFractions[] = {0.0, 0.1, 0.3, 0.5};

void build(bench::Grid& grid) {
  for (const double fraction : kFractions) {
    for (const auto policy :
         {core::PolicyKind::kWrr, core::PolicyKind::kLard,
          core::PolicyKind::kPrord}) {
      core::ExperimentConfig config;
      config.workload = trace::synthetic_spec();
      config.workload.site.dynamic_page_fraction = fraction;
      config.policy = policy;
      grid.add("dyn=" + util::Table::num(fraction, 1) + "/" +
                   core::policy_label(policy),
               std::move(config));
    }
  }
}

void print(bench::Grid& grid) {
  std::cout << "\n=== Extension: dynamic-content fraction sweep (synthetic) "
               "===\n\n";
  util::Table table({"dynamic-pages", "policy", "throughput(req/s)",
                     "hit-rate(static)", "mean-resp(ms)", "PRORD/LARD"});
  double lard = 0;
  for (const auto& cell : grid.cells()) {
    const auto& r = cell.result;
    if (r.policy == "LARD") lard = r.throughput_rps();
    table.add_row({cell.label.substr(4, 3), r.policy,
                   util::Table::num(r.throughput_rps(), 0),
                   util::Table::num(r.hit_rate(), 3),
                   util::Table::num(r.metrics.mean_response_ms(), 1),
                   r.policy == "PRORD" && lard > 0
                       ? util::Table::num(r.throughput_rps() / lard, 2)
                       : "-"});
  }
  table.print(std::cout);
  std::cout << "\nExpected: PRORD stays on top across the sweep — locality "
               "machinery for static content, load balancing for dynamic.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::Grid grid;
  build(grid);
  bench::print_params(cluster::ClusterParams{});
  bench::register_grid_benchmark("ext/dynamic_content", grid);
  benchmark::RunSpecifiedBenchmarks();
  grid.maybe_write_csv("ext_dynamic_content");
  print(grid);
  return 0;
}
